//! The deadline-aware query scheduler: one shared worker pool, an
//! earliest-deadline-first queue with per-graph admission quotas, a
//! cancellable execution pipeline and the cached fast path.
//!
//! # Architecture
//!
//! A [`Scheduler`] owns a fixed pool of worker threads sized to the host
//! (not to the number of graphs — a multi-graph [`crate::MultiEngine`]
//! runs **one** pool across all resident graphs). Each worker owns one
//! long-lived [`QueryScratch`] — the dense epoch-stamped workspace from
//! `hkpr-core` plus the sweep buffers — so steady-state serving performs
//! no per-query allocation in the estimator hot path. The scratch is
//! graph-agnostic (epoch-reset and re-sized per query), which is what
//! lets one pool serve every graph.
//!
//! Jobs carry `(graph, deadline, enqueue sequence)` and are popped
//! **earliest-deadline-first** from a binary-heap queue
//! ([`DeadlineQueue`]): requests with deadlines run in deadline order,
//! deadline-free requests run FIFO after them. Admission is bounded twice
//! — a total queue bound ([`EngineConfig::max_queue`]) and a per-graph
//! quota ([`EngineConfig::per_graph_queue`]) so no single graph's burst
//! can occupy the whole queue and starve the others.
//!
//! # Deadlines and cancellation
//!
//! A request's deadline is enforced at three points:
//!
//! 1. **submit** — an already-expired request is shed immediately;
//! 2. **dequeue** — a worker re-checks the deadline before spending
//!    anything on the job ([`EngineStats::shed_queued`]);
//! 3. **during execution** — the job's [`CancelToken`] is registered with
//!    the scheduler's deadline watchdog thread, which fires it the moment
//!    the deadline passes; the estimators poll the token at hop/chunk
//!    boundaries (a relaxed atomic load) and abort with a typed
//!    [`ServeError::Cancelled`] ([`EngineStats::cancelled_running`]).
//!    Cancellation never corrupts worker state — scratch is epoch-reset
//!    at the start of every query (property-tested in `hkpr-core`).
//!
//! # Determinism
//!
//! The engine inherits the workspace layer's bit-identical RNG-stream
//! scheme: a query's result is a pure function of
//! `(graph, method, canonical params, seed, rng_seed)` — independent of
//! which worker runs it, in what order the EDF queue popped it, and the
//! pool size. That is what makes caching *and* single-flight coalescing
//! sound: a cached hit, a coalesced follower and a cold recomputation are
//! byte-equal ([`ClusterResult::bitwise_eq`]), which the property suite
//! in `tests/engine_props.rs` and the golden conformance suite verify.
//!
//! # Single-flight misses
//!
//! Concurrent requests with the same canonical cache key block on one
//! computation (see [`crate::cache`]): the first miss leads, the rest
//! coalesce and receive the identical bytes. Followers share the flight's
//! fate — if the leader is shed or cancelled, they receive that error.
//!
//! # One scheduler, two entry modes
//!
//! [`run_batch`](crate::run_batch) runs the *same* [`execute`] core as
//! the scheduler's workers, on scoped threads over a one-shot work list
//! (no cache, no deadlines). The persistent and batch paths therefore
//! cannot drift: every query, in either mode, executes `estimate_in` +
//! `sweep_in` on a per-worker scratch with a per-request RNG stream.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hk_cluster::{ClusterResult, LocalClusterer, Method, QueryScratch};
use hk_graph::{Graph, NodeId};
use hkpr_core::fxhash::{FxHashMap, FxHasher};
use hkpr_core::{AccuracyTier, CancelToken, HkprError, HkprParams, WalkKernel};

use crate::cache::{
    CacheKey, CacheStats, FlightClaim, FlightResult, MethodKey, ParamsKey, ResultCache,
};

/// Typed serving errors — the engine's answer to overload, lateness and
/// cancellation, distinct from the estimator's own [`HkprError`]s.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The work queue (total bound or the graph's admission quota) is
    /// full; the request was rejected at submit time.
    Overloaded {
        /// Queue length observed at rejection (total or per-graph,
        /// whichever bound fired).
        queue_len: usize,
        /// The bound that fired.
        limit: usize,
    },
    /// The request's deadline passed before a worker could start it (or
    /// before it was submitted).
    DeadlineExceeded {
        /// How far past the deadline the request was when shed.
        late_by: Duration,
    },
    /// The request started executing, its deadline passed mid-run, and
    /// the cancellation caught the query **before any accuracy tier
    /// completed** — there was nothing usable to return. (A cancellation
    /// that lands after at least one tier returns `Ok` with
    /// [`QueryResponse::degraded`] set instead; callers that previously
    /// matched `Cancelled` for every mid-run deadline should now handle
    /// both.)
    Cancelled {
        /// How long the query ran before the cancellation took effect.
        after: Duration,
    },
    /// The estimator rejected the query (bad seed, bad parameters).
    Query(HkprError),
    /// The engine shut down while the request was in flight.
    Disconnected,
    /// The request named a graph no registry entry exists for.
    UnknownGraph(String),
    /// Loading the named graph's snapshot failed (I/O, corruption…).
    /// Carries the rendered [`hk_graph::GraphError`] — the source error
    /// is not `Clone`, and shed/retry logic only needs the text.
    GraphLoad {
        /// Registry name of the graph.
        graph: String,
        /// Rendered load error.
        error: String,
    },
    /// The worker executing the request panicked (estimator bug, cache
    /// bug, injected fault…). The panic is contained: the worker rebuilds
    /// its scratch and keeps serving, coalesced followers receive this
    /// same error, and [`EngineStats::panics`] counts the event.
    Internal {
        /// Rendered panic payload.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queue_len, limit } => {
                write!(f, "engine overloaded: {queue_len} queued (limit {limit})")
            }
            ServeError::DeadlineExceeded { late_by } => {
                write!(f, "deadline exceeded by {late_by:?}")
            }
            ServeError::Cancelled { after } => {
                write!(
                    f,
                    "query cancelled after {after:?} (deadline passed mid-run)"
                )
            }
            ServeError::Query(e) => write!(f, "query error: {e}"),
            ServeError::Disconnected => write!(f, "engine shut down"),
            ServeError::UnknownGraph(name) => write!(f, "unknown graph {name:?}"),
            ServeError::GraphLoad { graph, error } => {
                write!(f, "loading graph {graph:?} failed: {error}")
            }
            ServeError::Internal { detail } => {
                write!(f, "internal error: worker panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HkprError> for ServeError {
    fn from(e: HkprError) -> Self {
        ServeError::Query(e)
    }
}

/// User-facing accuracy knobs of a request; quantized into the cache key
/// and canonicalized before computing (see [`crate::cache`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Knobs {
    /// Heat constant `t` (paper default 5).
    pub t: f64,
    /// Relative error threshold `eps_r` (paper default 0.5).
    pub eps_r: f64,
    /// Normalized-HKPR threshold `delta`; `None` = the paper's `1/n`.
    pub delta: Option<f64>,
    /// Failure probability `p_f` (paper default 1e-6).
    pub p_f: f64,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            t: 5.0,
            eps_r: 0.5,
            delta: None,
            p_f: 1e-6,
        }
    }
}

/// One clustering query.
#[derive(Clone, Copy, Debug)]
pub struct QueryRequest {
    /// Seed node.
    pub seed: NodeId,
    /// Estimator powering the query.
    pub method: Method,
    /// Accuracy knobs.
    pub knobs: Knobs,
    /// RNG stream seed. Part of the cache key: two requests share a cache
    /// entry only if they would compute bit-identical results.
    pub rng_seed: u64,
    /// Optional deadline: the request is shed if it has not started by
    /// then, and cancelled mid-run if it has.
    pub deadline: Option<Instant>,
}

impl QueryRequest {
    /// A TEA+ request with default knobs, RNG stream 0 and no deadline.
    pub fn new(seed: NodeId) -> QueryRequest {
        QueryRequest {
            seed,
            method: Method::TeaPlus,
            knobs: Knobs::default(),
            rng_seed: 0,
            deadline: None,
        }
    }

    /// Set the estimator.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Set the accuracy knobs.
    pub fn knobs(mut self, knobs: Knobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Set the RNG stream seed.
    pub fn rng_seed(mut self, rng_seed: u64) -> Self {
        self.rng_seed = rng_seed;
        self
    }

    /// Give this request `d` from now: shed it if it has not started by
    /// then, cancel it mid-run if it has (EDF scheduling runs urgent
    /// requests first, so a deadline also *raises priority*).
    pub fn deadline_in(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }
}

/// How the cache treated a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache without touching a worker.
    Hit,
    /// Computed by a worker and inserted.
    Miss,
    /// Coalesced onto a concurrent identical miss (single-flight): the
    /// bytes are the leader's, no extra compute happened.
    Coalesced,
    /// Served from the hub store: the answer was precomputed in the
    /// background at registry load time for a top-degree seed and is
    /// bit-identical to what a cold recomputation would produce (see
    /// [`crate::hub`]).
    Precomputed,
    /// Not cached: the engine runs without a cache, the batch path, or
    /// the answer is degraded (only full-accuracy results are cached).
    Uncached,
}

/// Wall-clock breakdown of one query, nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryTiming {
    /// Time between submit and a worker dequeuing the request.
    pub queue_ns: u64,
    /// Estimator push phase (0 for cache hits and non-workspace methods).
    pub push_ns: u64,
    /// Estimator walk phase, incl. residue reduction and assembly
    /// (0 for cache hits and non-workspace methods).
    pub walk_ns: u64,
    /// Whole phase one (`estimate_in`), as timed by the worker.
    pub estimate_ns: u64,
    /// Phase two (`sweep_in`).
    pub sweep_ns: u64,
    /// Submit-to-reply total.
    pub total_ns: u64,
}

/// Marker on an answer whose refinement was cut short by the deadline
/// watchdog: the result is an exactly-normalized, unbiased estimate at
/// the best accuracy tier completed before cancellation — not the
/// requested accuracy. Degraded answers are never cached (the cache only
/// stores full-accuracy results), so a retry without a deadline
/// recomputes at full accuracy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Degraded {
    /// How far the tier ladder got (walks done vs planned, achieved
    /// `eps_r` vs requested).
    pub achieved: AccuracyTier,
    /// How long the query ran before refinement stopped.
    pub after: Duration,
}

/// A completed query: the (possibly shared) result plus telemetry.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The cluster. Shared with the cache on hits, misses and coalesced
    /// followers.
    pub result: Arc<ClusterResult>,
    /// Cache treatment.
    pub outcome: CacheOutcome,
    /// `Some` iff the deadline watchdog stopped refinement early and this
    /// answer is best-effort rather than full-accuracy (see [`Degraded`]).
    pub degraded: Option<Degraded>,
    /// Per-phase timings (hits and coalesced followers only fill
    /// `total_ns`).
    pub timing: QueryTiming,
}

/// Aggregate scheduler counters (monotonic since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries completed at full accuracy (misses + uncached; hits,
    /// coalesced followers and degraded answers excluded).
    pub completed: u64,
    /// Queries that returned an estimator error.
    pub errors: u64,
    /// Requests shed because their deadline passed before execution
    /// started (at submit or at dequeue).
    pub shed_queued: u64,
    /// Requests cancelled *mid-execution* by the deadline watchdog
    /// **before any accuracy tier completed** — nothing usable to return.
    /// A mid-run cancellation that caught at least one tier counts in
    /// `degraded` instead.
    pub cancelled_running: u64,
    /// Requests the watchdog stopped mid-refinement that still returned a
    /// typed best-effort answer ([`QueryResponse::degraded`]).
    pub degraded: u64,
    /// Worker panics contained by the panic guard (the request got
    /// [`ServeError::Internal`]; the worker rebuilt its scratch and kept
    /// serving).
    pub panics: u64,
    /// Requests rejected because the queue (total bound or per-graph
    /// quota) was full.
    pub shed_overload: u64,
    /// High-water mark of the queue depth.
    pub queue_hwm: u64,
    /// Worker threads in the (shared) pool.
    pub workers: u64,
    /// Cache counters (all zero when the cache is disabled);
    /// `cache.coalesced` counts single-flight followers.
    pub cache: CacheStats,
}

/// Scheduler sizing and policy. `Default` is a reasonable laptop
/// configuration; servers should set every field explicitly.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads of the pool (cross-query parallelism). In a
    /// [`crate::MultiEngine`] this is the **one shared pool spanning all
    /// graphs** — size it to the host, not to the number of graphs.
    /// Clamped to >= 1.
    pub workers: usize,
    /// Walk-phase threads per query (intra-query parallelism); 1 keeps
    /// each query on its worker, which is the right default when the
    /// worker pool already saturates the machine.
    pub walk_threads: usize,
    /// Bound on queued (not yet running) requests across all graphs;
    /// submits beyond it fail with [`ServeError::Overloaded`].
    pub max_queue: usize,
    /// Per-graph admission quota: at most this many queued requests per
    /// graph, so one graph's burst cannot starve the others. `0` = auto:
    /// `max(1, max_queue / 4)` in a multi-graph [`crate::MultiEngine`];
    /// the whole `max_queue` in a single-graph [`QueryEngine`] (one graph
    /// cannot starve itself, so no sub-quota applies).
    pub per_graph_queue: usize,
    /// Result-cache budget in bytes; 0 disables caching (and with it
    /// single-flight coalescing).
    pub cache_bytes: usize,
    /// Cache shard count (lock striping for the worker pool).
    pub cache_shards: usize,
    /// TEA+ hop-cap constant `c` applied to every canonical parameter set
    /// (paper recommendation 2.5).
    pub hop_c: f64,
    /// Walk kernel every worker's workspace runs
    /// ([`hkpr_core::WalkKernel::Lanes`] by default). Part of the cache
    /// identity: kernels consume the RNG stream differently, so a
    /// `Presampled` engine (the sharded-conformance configuration) and a
    /// `Lanes` engine sharing a cache never exchange results.
    pub walk_kernel: WalkKernel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            walk_threads: 1,
            max_queue: 1024,
            per_graph_queue: 0,
            cache_bytes: 32 << 20,
            cache_shards: 16,
            hop_c: 2.5,
            walk_kernel: WalkKernel::Lanes,
        }
    }
}

// ---------------------------------------------------------------------------
// EDF queue with per-graph admission quotas
// ---------------------------------------------------------------------------

/// What [`DeadlineQueue::push`] decided; rejections hand the item back.
pub(crate) enum Admit<T> {
    /// Queued; carries the depth after the push (for the high-water mark).
    Queued(usize),
    /// The total queue bound is full.
    TotalFull(T),
    /// The graph's admission quota is full.
    QuotaFull(T),
}

struct HeapEntry<T> {
    deadline: Option<Instant>,
    /// Enqueue sequence number: FIFO tiebreak, and the total order that
    /// makes heap entries distinguishable.
    seq: u64,
    graph_key: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    /// `BinaryHeap` is a max-heap, so "greater" pops first: greater =
    /// more urgent = earlier deadline (no deadline = infinitely late),
    /// then earlier enqueue sequence.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        match (self.deadline, other.deadline) {
            (None, Some(_)) => return Less,
            (Some(_), None) => return Greater,
            (Some(a), Some(b)) => match b.cmp(&a) {
                Equal => {}
                ord => return ord,
            },
            (None, None) => {}
        }
        other.seq.cmp(&self.seq)
    }
}

/// Earliest-deadline-first priority queue with a total bound and a
/// per-graph admission quota. Deadline-free items run FIFO after every
/// deadlined item — attaching a deadline both bounds *and prioritizes* a
/// request.
pub(crate) struct DeadlineQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    /// Queued items per graph admission key (the quota's denominator).
    per_graph: FxHashMap<u64, usize>,
    seq: u64,
    max_total: usize,
    quota: usize,
}

impl<T> DeadlineQueue<T> {
    pub(crate) fn new(max_total: usize, quota: usize) -> DeadlineQueue<T> {
        DeadlineQueue {
            heap: BinaryHeap::new(),
            per_graph: FxHashMap::default(),
            seq: 0,
            max_total: max_total.max(1),
            quota: quota.clamp(1, max_total.max(1)),
        }
    }

    pub(crate) fn push(&mut self, graph_key: u64, deadline: Option<Instant>, item: T) -> Admit<T> {
        if self.heap.len() >= self.max_total {
            return Admit::TotalFull(item);
        }
        let count = self.per_graph.entry(graph_key).or_insert(0);
        if *count >= self.quota {
            return Admit::QuotaFull(item);
        }
        *count += 1;
        self.seq += 1;
        self.heap.push(HeapEntry {
            deadline,
            seq: self.seq,
            graph_key,
            item,
        });
        Admit::Queued(self.heap.len())
    }

    pub(crate) fn pop(&mut self) -> Option<T> {
        let entry = self.heap.pop()?;
        if let Some(count) = self.per_graph.get_mut(&entry.graph_key) {
            *count -= 1;
            if *count == 0 {
                self.per_graph.remove(&entry.graph_key);
            }
        }
        Some(entry.item)
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    pub(crate) fn total_limit(&self) -> usize {
        self.max_total
    }

    pub(crate) fn quota(&self) -> usize {
        self.quota
    }

    pub(crate) fn queued_for(&self, graph_key: u64) -> usize {
        self.per_graph.get(&graph_key).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Deadline watchdog
// ---------------------------------------------------------------------------

struct WatchEntry {
    at: Instant,
    seq: u64,
    token: CancelToken,
}

impl PartialEq for WatchEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for WatchEntry {}
impl PartialOrd for WatchEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WatchEntry {
    /// Max-heap: greater = earlier `at`, so `peek` is the next deadline.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct WatchState {
    heap: BinaryHeap<WatchEntry>,
    seq: u64,
    shutdown: bool,
    /// Heap size at which [`Watchdog::register`] runs its next
    /// settled-entry purge (re-derived after every purge).
    purge_at: usize,
}

/// Purges run no earlier than this heap size — below it the heap is
/// too small to be worth a sweep.
const WATCHDOG_PURGE_MIN: usize = 64;

/// The deadline watchdog: workers register `(deadline, CancelToken)` of
/// the job they start; one monitor thread sleeps until the earliest
/// registered deadline and fires the expired tokens. Entries of jobs that
/// finish in time fire against a token nobody polls anymore — harmless to
/// *fire*, but not free to *keep*: under high qps with long deadlines the
/// heap would hold every settled job until its deadline lapsed. `register`
/// therefore purges settled entries lazily, detected by token orphaning
/// ([`CancelToken::is_orphaned`]: the job and its workspace dropped their
/// clones, only the heap's remains). Each sweep is O(heap) but the
/// threshold doubles past the surviving size, so the amortized cost per
/// registration is O(1) and the heap stays within a constant factor of
/// the *live* (unsettled) job count.
struct Watchdog {
    state: Mutex<WatchState>,
    bell: Condvar,
}

impl Watchdog {
    fn new() -> Watchdog {
        Watchdog {
            state: Mutex::new(WatchState::default()),
            bell: Condvar::new(),
        }
    }

    fn register(&self, at: Instant, token: CancelToken) {
        let mut state = self.state.lock().unwrap();
        state.seq += 1;
        let seq = state.seq;
        state.heap.push(WatchEntry { at, seq, token });
        if state.heap.len() >= state.purge_at.max(WATCHDOG_PURGE_MIN) {
            state.heap.retain(|e| !e.token.is_orphaned());
            state.purge_at = state.heap.len().saturating_mul(2);
        }
        self.bell.notify_one();
    }

    fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.bell.notify_all();
    }

    fn run(&self) {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            while state.heap.peek().is_some_and(|e| e.at <= now) {
                state.heap.pop().unwrap().token.cancel();
            }
            match state.heap.peek().map(|e| e.at) {
                Some(at) => {
                    let (s, _) = self
                        .bell
                        .wait_timeout(state, at.saturating_duration_since(now))
                        .unwrap();
                    state = s;
                }
                None => state = self.bell.wait(state).unwrap(),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Graph front: per-graph request preparation (params canonicalization)
// ---------------------------------------------------------------------------

/// Per-graph serving front: the graph pin plus the canonical-parameter
/// memo table. Cheap (no threads) — the [`crate::MultiEngine`] keeps one
/// per resident graph and drops it on eviction, releasing the pin.
pub(crate) struct GraphFront {
    graph: Arc<Graph>,
    fingerprint: u64,
    /// Key under which the scheduler accounts this graph's queue quota
    /// and admission rejections.
    admission_key: u64,
    hop_c: f64,
    /// Canonical parameter sets, built once per quantized-knob bucket.
    params_table: Mutex<FxHashMap<ParamsKey, Arc<HkprParams>>>,
}

/// Admission key of a registry name (stable across reloads).
pub(crate) fn admission_key_of(name: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = FxHasher::default();
    name.hash(&mut h);
    h.finish()
}

impl GraphFront {
    pub(crate) fn new(graph: Arc<Graph>, admission_key: u64, hop_c: f64) -> GraphFront {
        let fingerprint = graph.fingerprint();
        GraphFront {
            graph,
            fingerprint,
            admission_key,
            hop_c,
            params_table: Mutex::new(FxHashMap::default()),
        }
    }

    pub(crate) fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    pub(crate) fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Resolve a request's knobs to the canonical parameter set of their
    /// quantization bucket (building and memoizing it on first use).
    pub(crate) fn canonical_params(
        &self,
        knobs: &Knobs,
    ) -> Result<(Arc<HkprParams>, ParamsKey), ServeError> {
        let delta = knobs.delta.unwrap_or_else(|| {
            let n = self.graph.num_nodes().max(1);
            1.0 / n as f64
        });
        for (name, v) in [
            ("t", knobs.t),
            ("eps_r", knobs.eps_r),
            ("delta", delta),
            ("p_f", knobs.p_f),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ServeError::Query(HkprError::InvalidParameter(format!(
                    "{name} must be positive and finite, got {v}"
                ))));
            }
        }
        let key = ParamsKey::new(knobs.t, knobs.eps_r, delta, knobs.p_f);
        if let Some(params) = self.params_table.lock().unwrap().get(&key) {
            return Ok((Arc::clone(params), key));
        }
        // Build outside the lock (degree-histogram scan is O(n)); a
        // racing builder of the same bucket produces an identical value.
        let (t, eps_r, delta, p_f) = key.canonical();
        let params = Arc::new(
            HkprParams::builder(&self.graph)
                .t(t)
                .eps_r(eps_r)
                .delta(delta)
                .p_f(p_f)
                .c(self.hop_c)
                .build()
                .map_err(ServeError::Query)?,
        );
        let mut table = self.params_table.lock().unwrap();
        // Knobs are caller-controlled in a multi-tenant engine, so the
        // memo table must not grow unboundedly under a knob sweep. Real
        // deployments use a handful of accuracy levels; past the cap we
        // drop an arbitrary bucket (rebuilding one later costs a single
        // O(n) histogram scan, and outstanding queries keep their Arc).
        const MAX_PARAM_SETS: usize = 64;
        if table.len() >= MAX_PARAM_SETS && !table.contains_key(&key) {
            if let Some(&victim) = table.keys().next() {
                table.remove(&victim);
            }
        }
        let entry = table.entry(key).or_insert_with(|| Arc::clone(&params));
        Ok((Arc::clone(entry), key))
    }
}

// ---------------------------------------------------------------------------
// The shared scheduler
// ---------------------------------------------------------------------------

/// One unit of work on the shared pool.
struct Job {
    graph: Arc<Graph>,
    seed: NodeId,
    method: Method,
    params: Arc<HkprParams>,
    rng_seed: u64,
    deadline: Option<Instant>,
    enqueued: Instant,
    /// `Some` iff the result should be inserted into the cache (and the
    /// key's single-flight settled).
    cache_key: Option<CacheKey>,
    /// Fired by the deadline watchdog; polled by the estimators.
    cancel: CancelToken,
    reply: mpsc::Sender<Result<QueryResponse, ServeError>>,
}

struct SchedQueue {
    q: DeadlineQueue<Job>,
    /// False once no further job will ever arrive; idle workers exit.
    open: bool,
}

/// State shared between submitters, workers and the watchdog.
struct SchedShared {
    queue: Mutex<SchedQueue>,
    available: Condvar,
    /// `Arc` so a multi-graph front hands every graph one cache (keys
    /// carry the graph fingerprint, so sharing is collision-free).
    cache: Option<Arc<ResultCache>>,
    watchdog: Watchdog,
    completed: AtomicU64,
    errors: AtomicU64,
    shed_queued: AtomicU64,
    cancelled_running: AtomicU64,
    degraded: AtomicU64,
    panics: AtomicU64,
    shed_overload: AtomicU64,
    queue_hwm: AtomicU64,
    /// Per-graph admission-quota rejections, by admission key.
    admission: Mutex<FxHashMap<u64, u64>>,
    worker_count: usize,
    /// Walk-phase threads per query; a worker rebuilds its scratch with
    /// this after containing a panic.
    walk_threads: usize,
    /// Walk kernel every worker's workspace runs (cache-key relevant).
    walk_kernel: WalkKernel,
}

impl SchedShared {
    /// A fresh per-worker scratch configured for this scheduler's walk
    /// phase (thread fan-out + kernel).
    fn fresh_scratch(&self) -> QueryScratch {
        let mut scratch = QueryScratch::with_threads(self.walk_threads);
        scratch.workspace.set_walk_kernel(self.walk_kernel);
        scratch
    }
}

impl SchedShared {
    fn close(&self) {
        self.queue.lock().unwrap().open = false;
        self.available.notify_all();
    }

    /// Broadcast a terminal error to the job's coalesced followers.
    fn settle_err(&self, job: &Job, err: &ServeError) {
        if let (Some(cache), Some(key)) = (&self.cache, &job.cache_key) {
            cache.settle_flight(key, Err(err.clone()));
        }
    }
}

/// The shared deadline-aware worker pool. See the [module docs](self).
/// `QueryEngine` wraps one around a single graph; `MultiEngine` shares
/// one across every resident graph.
pub(crate) struct Scheduler {
    shared: Arc<SchedShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    watchdog: Option<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Build the pool. `auto_quota` resolves `per_graph_queue == 0`:
    /// single-graph engines pass `max_queue` (no sub-quota), the
    /// multi-graph front passes `max(1, max_queue / 4)`.
    pub(crate) fn new(
        config: EngineConfig,
        cache: Option<Arc<ResultCache>>,
        auto_quota: usize,
    ) -> Scheduler {
        let worker_count = config.workers.max(1);
        let max_queue = config.max_queue.max(1);
        let quota = if config.per_graph_queue == 0 {
            auto_quota.max(1)
        } else {
            config.per_graph_queue
        };
        let shared = Arc::new(SchedShared {
            queue: Mutex::new(SchedQueue {
                q: DeadlineQueue::new(max_queue, quota),
                open: true,
            }),
            available: Condvar::new(),
            cache,
            watchdog: Watchdog::new(),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed_queued: AtomicU64::new(0),
            cancelled_running: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            admission: Mutex::new(FxHashMap::default()),
            worker_count,
            walk_threads: config.walk_threads.max(1),
            walk_kernel: config.walk_kernel,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hk-serve-{i}"))
                    .spawn(move || {
                        let mut scratch = shared.fresh_scratch();
                        worker_loop(&shared, &mut scratch);
                    })
                    .expect("spawn hk-serve worker")
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hk-serve-watchdog".into())
                .spawn(move || shared.watchdog.run())
                .expect("spawn hk-serve watchdog")
        };
        Scheduler {
            shared,
            workers,
            watchdog: Some(watchdog),
        }
    }

    pub(crate) fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.shared.cache.as_ref()
    }

    pub(crate) fn worker_count(&self) -> usize {
        self.shared.worker_count
    }

    /// Worker threads still running. Workers only exit when the queue
    /// closes (shutdown) — the panic guard contains per-job panics — so
    /// a healthy pool reports `worker_count()`; anything less means
    /// worker threads died outright and the pool is degraded. Health
    /// endpoints surface this as scheduler liveness.
    pub(crate) fn live_workers(&self) -> usize {
        self.workers.iter().filter(|h| !h.is_finished()).count()
    }

    /// Quota rejections charged to one graph's admission key.
    pub(crate) fn admission_rejections(&self, admission_key: u64) -> u64 {
        self.shared
            .admission
            .lock()
            .unwrap()
            .get(&admission_key)
            .copied()
            .unwrap_or(0)
    }

    pub(crate) fn stats(&self) -> EngineStats {
        let shared = &self.shared;
        EngineStats {
            completed: shared.completed.load(Ordering::Relaxed),
            errors: shared.errors.load(Ordering::Relaxed),
            shed_queued: shared.shed_queued.load(Ordering::Relaxed),
            cancelled_running: shared.cancelled_running.load(Ordering::Relaxed),
            degraded: shared.degraded.load(Ordering::Relaxed),
            panics: shared.panics.load(Ordering::Relaxed),
            shed_overload: shared.shed_overload.load(Ordering::Relaxed),
            queue_hwm: shared.queue_hwm.load(Ordering::Relaxed),
            workers: shared.worker_count as u64,
            cache: shared.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
        }
    }

    /// [`Scheduler::submit_with_hubs`] without a hub store.
    pub(crate) fn submit(
        &self,
        front: &GraphFront,
        req: QueryRequest,
    ) -> Result<Ticket, ServeError> {
        self.submit_with_hubs(front, req, None)
    }

    /// The full submit pipeline: deadline pre-check, canonicalization,
    /// hub-store probe, cache probe, single-flight claim, EDF admission.
    pub(crate) fn submit_with_hubs(
        &self,
        front: &GraphFront,
        req: QueryRequest,
        hubs: Option<&crate::hub::HubStore>,
    ) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let submitted = Instant::now();
        // An already-expired request is dead on arrival — shed before
        // spending anything on it, including the cache probe (a probe
        // would skew hit/miss accounting for requests nobody awaits).
        if let Some(deadline) = req.deadline {
            if submitted > deadline {
                shared.shed_queued.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded {
                    late_by: submitted - deadline,
                });
            }
        }
        let (params, params_key) = front.canonical_params(&req.knobs)?;
        let key = CacheKey {
            fingerprint: front.fingerprint,
            seed: req.seed,
            rng_seed: req.rng_seed,
            params: params_key,
            method: MethodKey::new(req.method),
            kernel: crate::cache::kernel_tag(shared.walk_kernel),
        };
        // Hub store before the cache: precomputed answers are pinned (the
        // cache may have evicted them) and counted separately, so the
        // cold-start benefit is observable. Same key type — an exact
        // match carries the full bitwise-identity guarantee.
        if let Some(hubs) = hubs {
            if let Some(result) = hubs.lookup(&key) {
                return Ok(Ticket {
                    inner: TicketInner::Ready(Box::new(Ok(QueryResponse {
                        result,
                        outcome: CacheOutcome::Precomputed,
                        degraded: None,
                        timing: QueryTiming {
                            total_ns: submitted.elapsed().as_nanos() as u64,
                            ..QueryTiming::default()
                        },
                    }))),
                });
            }
        }
        if let Some(cache) = &shared.cache {
            if let Some(hit) = cache.get(&key) {
                return Ok(Ticket {
                    inner: TicketInner::Ready(Box::new(Ok(QueryResponse {
                        result: hit,
                        outcome: CacheOutcome::Hit,
                        degraded: None,
                        timing: QueryTiming {
                            total_ns: submitted.elapsed().as_nanos() as u64,
                            ..QueryTiming::default()
                        },
                    }))),
                });
            }
            // Single-flight: coalesce onto an identical in-flight miss.
            match cache.claim_flight(key) {
                FlightClaim::Follower(rx) => {
                    return Ok(Ticket {
                        inner: TicketInner::Flight {
                            rx,
                            submitted,
                            deadline: req.deadline,
                        },
                    })
                }
                FlightClaim::Leader => {
                    // The previous leader may have inserted + settled
                    // between our probe and the claim; re-probe so a
                    // cached key is never recomputed ("coalesce or hit,
                    // never recompute"). Settle the just-opened flight so
                    // any instant followers get the bytes too.
                    if let Some(hit) = cache.get(&key) {
                        cache.settle_flight(&key, Ok((Arc::clone(&hit), None)));
                        return Ok(Ticket {
                            inner: TicketInner::Ready(Box::new(Ok(QueryResponse {
                                result: hit,
                                outcome: CacheOutcome::Hit,
                                degraded: None,
                                timing: QueryTiming {
                                    total_ns: submitted.elapsed().as_nanos() as u64,
                                    ..QueryTiming::default()
                                },
                            }))),
                        });
                    }
                }
            }
        }
        let (tx, rx) = mpsc::channel();
        let job = Job {
            graph: Arc::clone(&front.graph),
            seed: req.seed,
            method: req.method,
            params,
            rng_seed: req.rng_seed,
            deadline: req.deadline,
            enqueued: submitted,
            cache_key: shared.cache.is_some().then_some(key),
            cancel: CancelToken::new(),
            reply: tx,
        };
        let admission_key = front.admission_key;
        let admit = {
            let mut q = shared.queue.lock().unwrap();
            q.q.push(admission_key, req.deadline, job)
        };
        match admit {
            Admit::Queued(depth) => {
                shared.queue_hwm.fetch_max(depth as u64, Ordering::Relaxed);
                shared.available.notify_one();
                Ok(Ticket {
                    inner: TicketInner::Pending(rx),
                })
            }
            Admit::TotalFull(job) => {
                let (queue_len, limit) = {
                    let q = shared.queue.lock().unwrap();
                    (q.q.len(), q.q.total_limit())
                };
                let err = ServeError::Overloaded { queue_len, limit };
                shared.shed_overload.fetch_add(1, Ordering::Relaxed);
                shared.settle_err(&job, &err);
                Err(err)
            }
            Admit::QuotaFull(job) => {
                let (queue_len, limit) = {
                    let q = shared.queue.lock().unwrap();
                    (q.q.queued_for(admission_key), q.q.quota())
                };
                let err = ServeError::Overloaded { queue_len, limit };
                shared.shed_overload.fetch_add(1, Ordering::Relaxed);
                *shared
                    .admission
                    .lock()
                    .unwrap()
                    .entry(admission_key)
                    .or_insert(0) += 1;
                shared.settle_err(&job, &err);
                Err(err)
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // Close the queue: workers drain every queued job (replies and
        // flight settlements delivered), then exit and join.
        self.shared.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.watchdog.shutdown();
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.shared.worker_count)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Render a panic payload for [`ServeError::Internal`].
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pull jobs (earliest deadline first) until the queue is closed *and*
/// drained.
///
/// Each job runs under a panic guard: a panic anywhere in [`process`]
/// (estimator bug, cache bug, injected fault) is contained here — the
/// requester gets a typed [`ServeError::Internal`], any coalesced
/// followers get the same via flight settlement, the worker rebuilds its
/// scratch (the unwound one may hold half-updated epochs) and keeps
/// serving. A panicking query must never take the pool down with it.
fn worker_loop(shared: &SchedShared, scratch: &mut QueryScratch) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.q.pop() {
                    break Some(job);
                }
                if !q.open {
                    break None;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        match job {
            Some(job) => {
                let reply = job.reply.clone();
                let cache_key = job.cache_key;
                let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    process(shared, scratch, job)
                }));
                if let Err(payload) = unwound {
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                    *scratch = shared.fresh_scratch();
                    let err = ServeError::Internal {
                        detail: panic_detail(payload),
                    };
                    if let (Some(cache), Some(key)) = (&shared.cache, &cache_key) {
                        cache.settle_flight(key, Err(err.clone()));
                    }
                    let _ = reply.send(Err(err));
                }
            }
            None => return,
        }
    }
}

/// Per-phase timings of one executed query (queue/total added by the
/// caller).
pub(crate) struct ExecTiming {
    push_ns: u64,
    walk_ns: u64,
    estimate_ns: u64,
    sweep_ns: u64,
}

/// The execution core both the scheduler's workers and [`run_batch`]
/// share: phase one (`estimate_in`) + phase two (`sweep_in`) on a
/// reusable scratch. Cancellation, if armed, rides on the token installed
/// in `scratch.workspace`.
pub(crate) fn execute(
    clusterer: &LocalClusterer<'_>,
    scratch: &mut QueryScratch,
    seed: NodeId,
    method: Method,
    params: &HkprParams,
    rng_seed: u64,
) -> Result<(ClusterResult, ExecTiming), HkprError> {
    let started = Instant::now();
    scratch.workspace.clear_phase_times();
    let (estimate, stats) =
        clusterer.estimate_in(method, seed, params, rng_seed, &mut scratch.workspace)?;
    let estimate_done = Instant::now();
    let phases = scratch.workspace.last_phase_times();
    let result = clusterer.sweep_in(seed, estimate, stats, scratch);
    Ok((
        result,
        ExecTiming {
            push_ns: phases.push_ns,
            walk_ns: phases.walk_ns,
            estimate_ns: (estimate_done - started).as_nanos() as u64,
            sweep_ns: estimate_done.elapsed().as_nanos() as u64,
        },
    ))
}

/// The anytime variant of [`execute`] the scheduler's workers run:
/// phase one through the tiered-refinement estimator path (so a mid-run
/// cancellation means "stop refining", not "discard everything"), phase
/// two (`sweep_in`) on whatever the ladder produced. With no cancellation
/// the final tier is **bitwise identical** to [`execute`]'s cold one-shot
/// run (gated by the core conformance suite and the golden differential
/// tests), which is what keeps the cached, batch and served paths
/// byte-equal.
fn execute_anytime(
    clusterer: &LocalClusterer<'_>,
    scratch: &mut QueryScratch,
    seed: NodeId,
    method: Method,
    params: &HkprParams,
    rng_seed: u64,
) -> Result<(ClusterResult, Option<AccuracyTier>, ExecTiming), HkprError> {
    let started = Instant::now();
    scratch.workspace.clear_phase_times();
    // The `core.push_tier` failpoint rides the push-ladder observer: an
    // injected Error cancels refinement at the certifying hop boundary
    // (→ typed degraded answer), an injected Panic unwinds into the
    // worker's containment, a Delay holds the push at the boundary long
    // enough for the deadline watchdog to fire deterministically.
    #[cfg(feature = "testing")]
    let mut on_push_tier = |_tier: u32| -> Result<(), HkprError> {
        crate::fault::fire("core.push_tier").map_err(|_| HkprError::Cancelled)
    };
    #[cfg(feature = "testing")]
    let controls = hkpr_core::AnytimeControls {
        on_push_tier: Some(&mut on_push_tier),
        ..Default::default()
    };
    #[cfg(not(feature = "testing"))]
    let controls = hkpr_core::AnytimeControls::default();
    let (estimate, stats, achieved) = clusterer.estimate_anytime_in(
        method,
        seed,
        params,
        rng_seed,
        controls,
        &mut scratch.workspace,
    )?;
    let estimate_done = Instant::now();
    let phases = scratch.workspace.last_phase_times();
    let result = clusterer.sweep_in(seed, estimate, stats, scratch);
    Ok((
        result,
        achieved,
        ExecTiming {
            push_ns: phases.push_ns,
            walk_ns: phases.walk_ns,
            estimate_ns: (estimate_done - started).as_nanos() as u64,
            sweep_ns: estimate_done.elapsed().as_nanos() as u64,
        },
    ))
}

/// Execute one job on a worker's scratch: deadline re-check, watchdog
/// arming, the [`execute_anytime`] core, cache insert + flight
/// settlement, reply. A job the watchdog cancelled after at least one
/// accuracy tier completed — a certified push tier *or* a walk tier —
/// still returns a typed best-effort answer
/// ([`QueryResponse::degraded`]); only a cancellation that caught nothing
/// usable (before the push certified its first coarsened tier) reports
/// [`ServeError::Cancelled`].
fn process(shared: &SchedShared, scratch: &mut QueryScratch, job: Job) {
    let started = Instant::now();
    let queue_ns = started.saturating_duration_since(job.enqueued).as_nanos() as u64;
    #[cfg(feature = "testing")]
    if let Err(detail) = crate::fault::fire("sched.dequeue") {
        let err = ServeError::Internal { detail };
        shared.settle_err(&job, &err);
        let _ = job.reply.send(Err(err));
        return;
    }
    if let Some(deadline) = job.deadline {
        // Re-check immediately before execution: the request may have
        // expired while queued.
        if started > deadline {
            shared.shed_queued.fetch_add(1, Ordering::Relaxed);
            let err = ServeError::DeadlineExceeded {
                late_by: started - deadline,
            };
            shared.settle_err(&job, &err);
            let _ = job.reply.send(Err(err));
            return;
        }
        // Arm the watchdog: if the deadline passes mid-run, the token
        // fires and the estimator aborts at the next hop/chunk boundary.
        shared.watchdog.register(deadline, job.cancel.clone());
    }
    scratch.workspace.set_cancel_token(Some(job.cancel.clone()));
    let clusterer = LocalClusterer::new(&job.graph);
    let outcome = execute_anytime(
        &clusterer,
        scratch,
        job.seed,
        job.method,
        &job.params,
        job.rng_seed,
    );
    scratch.workspace.set_cancel_token(None);
    match outcome {
        Ok((result, achieved, t)) => {
            let result = Arc::new(result);
            let degraded = achieved
                .filter(|tier| tier.is_degraded())
                .map(|achieved| Degraded {
                    achieved,
                    after: started.elapsed(),
                });
            let outcome = match (&shared.cache, &job.cache_key, &degraded) {
                (Some(cache), Some(key), None) => {
                    // The miss is recorded here — at the insert — not at
                    // the submit-time probe, so shed or errored requests
                    // never skew the ratio: `misses == insertions` and
                    // `hits + misses + coalesced` counts exactly the
                    // *full-accuracy* answers of a cached engine. A
                    // degraded answer (arm below) records no miss and
                    // inserts nothing — it reports `Uncached` and counts
                    // only in `EngineStats::degraded`, keeping the
                    // invariant exact. Insert before settling the flight
                    // so a racing request either coalesces or hits, never
                    // recomputes.
                    cache.record_miss();
                    #[cfg(feature = "testing")]
                    let insert = crate::fault::fire("cache.insert").is_ok();
                    #[cfg(not(feature = "testing"))]
                    let insert = true;
                    if insert {
                        cache.insert(*key, Arc::clone(&result));
                    }
                    cache.settle_flight(key, Ok((Arc::clone(&result), None)));
                    CacheOutcome::Miss
                }
                (Some(cache), Some(key), Some(d)) => {
                    // A degraded answer is never cached — the cache holds
                    // only full-accuracy results, so later identical
                    // requests recompute rather than inherit this one's
                    // deadline. Followers coalesced onto the flight do
                    // share its fate (bytes + degradation marker).
                    cache.settle_flight(key, Ok((Arc::clone(&result), Some(*d))));
                    CacheOutcome::Uncached
                }
                _ => CacheOutcome::Uncached,
            };
            if degraded.is_some() {
                shared.degraded.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.completed.fetch_add(1, Ordering::Relaxed);
            }
            let _ = job.reply.send(Ok(QueryResponse {
                result,
                outcome,
                degraded,
                timing: QueryTiming {
                    queue_ns,
                    push_ns: t.push_ns,
                    walk_ns: t.walk_ns,
                    estimate_ns: t.estimate_ns,
                    sweep_ns: t.sweep_ns,
                    total_ns: queue_ns + started.elapsed().as_nanos() as u64,
                },
            }));
        }
        Err(HkprError::Cancelled) => {
            shared.cancelled_running.fetch_add(1, Ordering::Relaxed);
            let err = ServeError::Cancelled {
                after: started.elapsed(),
            };
            shared.settle_err(&job, &err);
            let _ = job.reply.send(Err(err));
        }
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            let err = ServeError::Query(e);
            shared.settle_err(&job, &err);
            let _ = job.reply.send(Err(err));
        }
    }
}

// ---------------------------------------------------------------------------
// Tickets
// ---------------------------------------------------------------------------

/// Handle to an in-flight (or instantly answered) query.
pub struct Ticket {
    inner: TicketInner,
}

enum TicketInner {
    Ready(Box<Result<QueryResponse, ServeError>>),
    Pending(mpsc::Receiver<Result<QueryResponse, ServeError>>),
    /// Coalesced onto another request's computation (single-flight).
    Flight {
        rx: mpsc::Receiver<FlightResult>,
        submitted: Instant,
        /// The *follower's own* deadline, enforced while waiting on the
        /// flight (the watchdog only tracks the leader's job).
        deadline: Option<Instant>,
    },
}

impl Ticket {
    /// Block until the query completes. A coalesced ticket waits for the
    /// shared flight's outcome — success delivers the identical bytes,
    /// and a leader that errs (including a shed or cancellation) passes
    /// that error on; a follower with its own deadline stops waiting
    /// when that deadline passes ([`ServeError::DeadlineExceeded`]).
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        match self.inner {
            TicketInner::Ready(r) => *r,
            TicketInner::Pending(rx) => rx.recv().unwrap_or(Err(ServeError::Disconnected)),
            TicketInner::Flight {
                rx,
                submitted,
                deadline,
            } => {
                let outcome = match deadline {
                    None => rx.recv().map_err(|_| ServeError::Disconnected),
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            // Expired before we even started waiting.
                            Err(ServeError::DeadlineExceeded {
                                late_by: now - deadline,
                            })
                        } else {
                            rx.recv_timeout(deadline - now).map_err(|e| match e {
                                mpsc::RecvTimeoutError::Timeout => ServeError::DeadlineExceeded {
                                    late_by: deadline.elapsed(),
                                },
                                mpsc::RecvTimeoutError::Disconnected => ServeError::Disconnected,
                            })
                        }
                    }
                };
                match outcome {
                    Ok(Ok((result, degraded))) => Ok(QueryResponse {
                        result,
                        outcome: CacheOutcome::Coalesced,
                        degraded,
                        timing: QueryTiming {
                            total_ns: submitted.elapsed().as_nanos() as u64,
                            ..QueryTiming::default()
                        },
                    }),
                    Ok(Err(e)) => Err(e),
                    Err(e) => Err(e),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Single-graph engine façade
// ---------------------------------------------------------------------------

/// Persistent query engine over one graph: a [`GraphFront`] plus a
/// private [`Scheduler`] pool. See the [module docs](self). Multi-graph
/// deployments use [`crate::MultiEngine`], which shares one pool across
/// all graphs instead of spawning one per graph.
///
/// Dropping the engine closes the queue, lets queued and in-flight
/// queries finish and joins the workers.
pub struct QueryEngine {
    front: Arc<GraphFront>,
    sched: Scheduler,
}

impl QueryEngine {
    /// Build an engine over `graph` with the given configuration and
    /// start its workers. The engine owns a private result cache sized by
    /// [`EngineConfig::cache_bytes`]; use [`with_cache`](Self::with_cache)
    /// to share one cache across engines.
    pub fn new(graph: Arc<Graph>, config: EngineConfig) -> QueryEngine {
        let cache = (config.cache_bytes > 0)
            .then(|| Arc::new(ResultCache::new(config.cache_bytes, config.cache_shards)));
        QueryEngine::with_cache(graph, config, cache)
    }

    /// Build an engine over `graph` using a caller-provided (possibly
    /// shared) result cache — `None` disables caching regardless of
    /// [`EngineConfig::cache_bytes`]. Cache keys include the graph
    /// fingerprint, so entries from different graphs coexist (and survive
    /// a graph being evicted and reloaded, since the reloaded snapshot
    /// fingerprints identically).
    pub fn with_cache(
        graph: Arc<Graph>,
        config: EngineConfig,
        cache: Option<Arc<ResultCache>>,
    ) -> QueryEngine {
        let fingerprint = graph.fingerprint();
        let front = Arc::new(GraphFront::new(graph, fingerprint, config.hop_c));
        // One graph cannot starve itself: auto quota = the whole queue.
        let sched = Scheduler::new(config, cache, config.max_queue.max(1));
        QueryEngine { front, sched }
    }

    /// An engine with [`EngineConfig::default`].
    pub fn with_defaults(graph: Arc<Graph>) -> QueryEngine {
        QueryEngine::new(graph, EngineConfig::default())
    }

    /// The graph this engine serves.
    pub fn graph(&self) -> &Arc<Graph> {
        self.front.graph()
    }

    /// The graph fingerprint baked into every cache key.
    pub fn fingerprint(&self) -> u64 {
        self.front.fingerprint()
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.sched.stats()
    }

    /// Submit a request. Returns immediately: with a [`Ticket`] holding
    /// the (possibly already cached or coalesced) answer, or with a typed
    /// shed error.
    pub fn submit(&self, req: QueryRequest) -> Result<Ticket, ServeError> {
        self.sched.submit(&self.front, req)
    }

    /// Submit and block for the answer.
    pub fn query(&self, req: QueryRequest) -> Result<QueryResponse, ServeError> {
        self.submit(req)?.wait()
    }
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("nodes", &self.front.graph().num_nodes())
            .field("edges", &self.front.graph().num_edges())
            .field(
                "fingerprint",
                &format_args!("{:#018x}", self.front.fingerprint()),
            )
            .field("workers", &self.sched.worker_count())
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// One-shot batch mode
// ---------------------------------------------------------------------------

/// Run one clustering query per seed, distributed over `threads` workers.
///
/// Results arrive in the same order as `seeds`. Each query derives its RNG
/// stream from `rng_seed + index`, so a batch run is bit-identical to the
/// equivalent sequential loop — and to the same requests served through a
/// persistent engine, because both paths run the scheduler's [`execute`]
/// core (`estimate_in` + `sweep_in` on a per-worker scratch). This
/// one-shot mode uses scoped threads claiming indices from a shared
/// atomic counter, no cache and no deadlines; every worker owns one
/// [`QueryScratch`] reused across its whole share of the batch, so
/// steady-state batch serving performs no per-query allocation in the
/// estimator hot path.
pub fn run_batch(
    clusterer: &LocalClusterer<'_>,
    method: Method,
    seeds: &[NodeId],
    params: &HkprParams,
    rng_seed: u64,
    threads: usize,
) -> Vec<Result<ClusterResult, HkprError>> {
    run_batch_with_kernel(
        clusterer,
        method,
        seeds,
        params,
        rng_seed,
        threads,
        WalkKernel::Lanes,
    )
}

/// [`run_batch`] with an explicit walk kernel on every worker's
/// workspace. `WalkKernel::Lanes` reproduces `run_batch` exactly;
/// `WalkKernel::Presampled` is the single-process conformance oracle for
/// the sharded frontier-exchange path, which distributes the presampled
/// chunk streams across processes.
pub fn run_batch_with_kernel(
    clusterer: &LocalClusterer<'_>,
    method: Method,
    seeds: &[NodeId],
    params: &HkprParams,
    rng_seed: u64,
    threads: usize,
    kernel: WalkKernel,
) -> Vec<Result<ClusterResult, HkprError>> {
    let threads = threads.max(1).min(seeds.len().max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<ClusterResult, HkprError>)>();
    // Index claiming is racy but harmless: each query is a pure function
    // of (seed, params, rng_seed + index), so the schedule cannot show.
    let work = |tx: mpsc::Sender<(usize, Result<ClusterResult, HkprError>)>| {
        let mut scratch = QueryScratch::new();
        scratch.workspace.set_walk_kernel(kernel);
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= seeds.len() {
                break;
            }
            let out = execute(
                clusterer,
                &mut scratch,
                seeds[i],
                method,
                params,
                rng_seed.wrapping_add(i as u64),
            )
            .map(|(result, _)| result);
            let _ = tx.send((i, out));
        }
    };
    if threads == 1 {
        work(tx);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                scope.spawn(|| work(tx));
            }
            drop(tx);
        });
    }

    let mut out: Vec<Option<Result<ClusterResult, HkprError>>> =
        (0..seeds.len()).map(|_| None).collect();
    for (i, reply) in rx.try_iter() {
        out[i] = Some(reply);
    }
    out.into_iter()
        .map(|slot| slot.expect("every seed answered by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_graph::gen::planted_partition;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph() -> Arc<Graph> {
        let mut rng = SmallRng::seed_from_u64(44);
        Arc::new(
            planted_partition(4, 40, 0.35, 0.01, &mut rng)
                .unwrap()
                .graph,
        )
    }

    fn engine(config: EngineConfig) -> QueryEngine {
        QueryEngine::new(graph(), config)
    }

    #[test]
    fn edf_queue_pops_earliest_deadline_first() {
        let now = Instant::now();
        let mut q: DeadlineQueue<&'static str> = DeadlineQueue::new(64, 64);
        let at = |ms: u64| Some(now + Duration::from_millis(ms));
        assert!(matches!(q.push(1, None, "fifo-1"), Admit::Queued(_)));
        assert!(matches!(q.push(1, at(50), "late"), Admit::Queued(_)));
        assert!(matches!(q.push(2, at(5), "urgent"), Admit::Queued(_)));
        assert!(matches!(q.push(2, None, "fifo-2"), Admit::Queued(_)));
        assert!(matches!(q.push(1, at(20), "middle"), Admit::Queued(_)));
        assert!(matches!(q.push(3, at(5), "urgent-2"), Admit::Queued(_)));
        // Deadlines first (earliest first, FIFO on ties), then the
        // deadline-free items in FIFO order.
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            ["urgent", "urgent-2", "middle", "late", "fifo-1", "fifo-2"]
        );
    }

    #[test]
    fn queue_enforces_total_bound_and_per_graph_quota() {
        let mut q: DeadlineQueue<u32> = DeadlineQueue::new(4, 2);
        assert!(matches!(q.push(7, None, 0), Admit::Queued(1)));
        assert!(matches!(q.push(7, None, 1), Admit::Queued(2)));
        // Graph 7 is at quota; graph 8 still admits.
        assert!(matches!(q.push(7, None, 2), Admit::QuotaFull(2)));
        assert!(matches!(q.push(8, None, 3), Admit::Queued(3)));
        assert!(matches!(q.push(9, None, 4), Admit::Queued(4)));
        // Total bound fires before any quota once the queue is full.
        assert!(matches!(q.push(10, None, 5), Admit::TotalFull(5)));
        assert_eq!(q.queued_for(7), 2);
        // Draining graph 7 reopens its quota.
        q.pop();
        q.pop();
        q.pop();
        assert!(q.queued_for(7) < 2);
        assert!(matches!(q.push(7, None, 6), Admit::Queued(_)));
    }

    #[test]
    fn hit_and_miss_accounting() {
        let e = engine(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let a = e.query(QueryRequest::new(3)).unwrap();
        assert_eq!(a.outcome, CacheOutcome::Miss);
        let b = e.query(QueryRequest::new(3)).unwrap();
        assert_eq!(b.outcome, CacheOutcome::Hit);
        // A hit bypasses the workers entirely.
        assert_eq!(b.timing.queue_ns, 0);
        assert!(a.result.bitwise_eq(&b.result));
        // Different rng stream => different key => miss.
        let c = e.query(QueryRequest::new(3).rng_seed(9)).unwrap();
        assert_eq!(c.outcome, CacheOutcome::Miss);
        let stats = e.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 2);
        assert_eq!(stats.cache.coalesced, 0);
        assert_eq!(stats.completed, 2);
        assert!(stats.queue_hwm >= 1);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn uncached_engine_reports_uncached() {
        let e = engine(EngineConfig {
            workers: 1,
            cache_bytes: 0,
            ..EngineConfig::default()
        });
        for _ in 0..2 {
            let r = e.query(QueryRequest::new(0)).unwrap();
            assert_eq!(r.outcome, CacheOutcome::Uncached);
        }
        assert_eq!(e.stats().cache, CacheStats::default());
    }

    #[test]
    fn estimator_errors_are_typed_and_counted() {
        let e = engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let err = e.query(QueryRequest::new(100_000)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Query(HkprError::SeedOutOfRange { .. })
        ));
        let err = e
            .query(QueryRequest::new(0).knobs(Knobs {
                t: -1.0,
                ..Knobs::default()
            }))
            .unwrap_err();
        assert!(matches!(err, ServeError::Query(_)));
        assert_eq!(e.stats().errors, 1); // knob validation fails pre-queue
    }

    #[test]
    fn expired_deadline_is_shed_before_compute() {
        let e = engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let mut req = QueryRequest::new(1);
        req.deadline = Some(Instant::now() - Duration::from_millis(5));
        match e.query(req) {
            Err(ServeError::DeadlineExceeded { late_by }) => {
                assert!(late_by >= Duration::from_millis(5));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = e.stats();
        assert_eq!(stats.shed_queued, 1);
        assert_eq!(stats.cancelled_running, 0);
        // A generous deadline passes.
        let ok = e.query(QueryRequest::new(1).deadline_in(Duration::from_secs(60)));
        assert!(ok.is_ok());
    }

    #[test]
    fn mid_run_deadline_cancels_via_the_watchdog() {
        // A Monte-Carlo query with tens of millions of walks takes far
        // longer than the deadline on any hardware; the watchdog must
        // fire the job's token mid-run. Under tiered refinement that
        // means either a typed `Cancelled` (no tier finished in time) or
        // a degraded answer (some tier did) — never a full-accuracy
        // completion, and never the queued-shed counter (the job passed
        // the dequeue-time check).
        let e = engine(EngineConfig {
            workers: 1,
            cache_bytes: 0,
            ..EngineConfig::default()
        });
        // delta = 1e-8 makes the published Monte-Carlo walk count ~1e10,
        // so the 40M cap binds and the query runs for seconds uncancelled.
        let req = QueryRequest::new(2)
            .method(Method::MonteCarlo {
                max_walks: Some(40_000_000),
            })
            .knobs(Knobs {
                delta: Some(1e-8),
                ..Knobs::default()
            })
            .deadline_in(Duration::from_millis(30));
        match e.query(req) {
            Err(ServeError::Cancelled { after }) => {
                assert!(after >= Duration::from_millis(25), "ran only {after:?}");
            }
            Ok(resp) => {
                // Fast host: the first accuracy tier beat the watchdog, so
                // cancellation meant "stop refining", not "drop the query".
                let d = resp
                    .degraded
                    .expect("a 30ms deadline cannot reach full accuracy on 40M walks");
                assert!(d.achieved.is_degraded());
                assert!(
                    d.after >= Duration::from_millis(25),
                    "ran only {:?}",
                    d.after
                );
            }
            Err(other) => panic!("expected Cancelled or a degraded answer, got {other:?}"),
        }
        let stats = e.stats();
        assert_eq!(stats.cancelled_running + stats.degraded, 1);
        assert_eq!(stats.shed_queued, 0);
        assert_eq!(stats.completed, 0);
        // The worker scratch survives: the same engine answers the next
        // query bit-identically to a fresh engine.
        let again = e.query(QueryRequest::new(2)).unwrap();
        let fresh = engine(EngineConfig {
            workers: 1,
            cache_bytes: 0,
            ..EngineConfig::default()
        })
        .query(QueryRequest::new(2))
        .unwrap();
        assert!(again.result.bitwise_eq(&fresh.result));
    }

    #[test]
    fn degraded_answer_carries_achieved_tier_and_is_not_cached() {
        // Cache ON: a degraded answer must come back `Uncached` and must
        // not poison the cache for later full-accuracy requests.
        let e = engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        // 4M walks: the up-front length sampling (which cannot degrade —
        // a cancel there is a hard `Cancelled`) stays well under the
        // deadline ladder even on a loaded debug host, while the walk
        // phase still runs long enough that a full completion inside the
        // first rung would need an implausibly fast machine.
        let req = QueryRequest::new(3)
            .method(Method::MonteCarlo {
                max_walks: Some(4_000_000),
            })
            .knobs(Knobs {
                delta: Some(1e-8),
                ..Knobs::default()
            });
        // Escalate the deadline until the cancel lands in the walk phase
        // (anything deposited makes an Ok degraded answer).
        let mut resp = None;
        let mut ok_ms = 0u64;
        for ms in [100u64, 250, 500, 1_000, 2_000, 4_000, 8_000] {
            match e.query(req.deadline_in(Duration::from_millis(ms))) {
                Ok(r) => {
                    resp = Some(r);
                    ok_ms = ms;
                    break;
                }
                Err(ServeError::Cancelled { .. }) => continue,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        let resp = resp.expect("no walk chunk completed within 8s");
        let d = resp
            .degraded
            .expect("4M walks cannot finish inside the deadline");
        let tier = d.achieved;
        assert!(tier.is_degraded());
        assert!(tier.tiers_completed < tier.tiers_planned);
        assert!(tier.walks_done > 0 && tier.walks_done < tier.walks_planned);
        assert!(
            tier.eps_r_achieved > tier.eps_r_requested,
            "partial walks must widen the error bound: {tier:?}"
        );
        assert_eq!(resp.outcome, CacheOutcome::Uncached);
        let stats = e.stats();
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.completed, 0);
        // Not cached: an identical request under the same deadline must
        // compute again (a poisoned cache would answer `Hit` instantly).
        if let Ok(again) = e.query(req.deadline_in(Duration::from_millis(ok_ms))) {
            assert_ne!(again.outcome, CacheOutcome::Hit);
        }
    }

    #[test]
    fn watchdog_heap_purges_settled_entries() {
        // Fast queries with long deadlines: every job registers a
        // watchdog entry that outlives it by minutes. Without the lazy
        // purge the heap would end at ~query count; with it, settled
        // (orphaned-token) entries are swept whenever the heap reaches
        // the purge threshold, so it stays bounded by that threshold
        // regardless of traffic.
        let e = engine(EngineConfig {
            workers: 1,
            cache_bytes: 0, // every query reaches a worker and registers
            ..EngineConfig::default()
        });
        let queries = 4 * WATCHDOG_PURGE_MIN;
        for i in 0..queries {
            e.query(QueryRequest::new((i % 7) as NodeId).deadline_in(Duration::from_secs(600)))
                .unwrap();
        }
        let len = e.sched.shared.watchdog.state.lock().unwrap().heap.len();
        assert!(
            len <= WATCHDOG_PURGE_MIN,
            "watchdog heap kept {len} of {queries} settled entries"
        );
    }

    #[test]
    fn degraded_miss_keeps_cache_counters_consistent() {
        // Cache ON: a degraded answer goes through the compute path but
        // records neither a miss nor an insertion, so the PR-2 invariant
        // `misses == insertions` holds exactly and `hits + misses +
        // coalesced` keeps counting only the full-accuracy answers.
        let e = engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        // Baseline: one full-accuracy miss, then a hit on it.
        e.query(QueryRequest::new(1)).unwrap();
        let hit = e.query(QueryRequest::new(1)).unwrap();
        assert_eq!(hit.outcome, CacheOutcome::Hit);
        // A degraded miss (escalating deadlines until the cancel lands
        // inside the walk phase — see the degraded-answer test above).
        let req = QueryRequest::new(3)
            .method(Method::MonteCarlo {
                max_walks: Some(4_000_000),
            })
            .knobs(Knobs {
                delta: Some(1e-8),
                ..Knobs::default()
            });
        let mut resp = None;
        for ms in [100u64, 250, 500, 1_000, 2_000, 4_000, 8_000] {
            match e.query(req.deadline_in(Duration::from_millis(ms))) {
                Ok(r) => {
                    resp = Some(r);
                    break;
                }
                Err(ServeError::Cancelled { .. }) => continue,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        let resp = resp.expect("no walk chunk completed within 8s");
        assert!(resp.degraded.is_some());
        assert_eq!(resp.outcome, CacheOutcome::Uncached);
        let s = e.stats();
        assert_eq!(
            s.cache.misses, s.cache.insertions,
            "degraded answers must not drift the miss/insert invariant"
        );
        assert_eq!((s.cache.hits, s.cache.misses), (1, 1));
        assert_eq!(s.degraded, 1, "the degraded answer counts separately");
        assert_eq!(s.completed, 1, "only the full-accuracy miss completed");
    }

    #[test]
    fn concurrent_identical_misses_coalesce_single_flight() {
        // One worker + a slow query: submits 2..=4 arrive while the first
        // is still computing, so they must coalesce onto its flight.
        let e = engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        // Slow query (see the watchdog test for the delta trick) so the
        // later submits reliably land while the leader is computing.
        let req = QueryRequest::new(5)
            .method(Method::MonteCarlo {
                max_walks: Some(3_000_000),
            })
            .knobs(Knobs {
                delta: Some(1e-8),
                ..Knobs::default()
            });
        let tickets: Vec<Ticket> = (0..4).map(|_| e.submit(req).unwrap()).collect();
        let responses: Vec<QueryResponse> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let misses = responses
            .iter()
            .filter(|r| r.outcome == CacheOutcome::Miss)
            .count();
        let coalesced = responses
            .iter()
            .filter(|r| r.outcome == CacheOutcome::Coalesced)
            .count();
        assert_eq!(misses, 1, "exactly one leader computes");
        assert_eq!(coalesced, 3, "all others coalesce");
        for r in &responses[1..] {
            assert!(
                r.result.bitwise_eq(&responses[0].result),
                "coalesced bytes differ from the leader's"
            );
            assert!(Arc::ptr_eq(&r.result, &responses[0].result));
        }
        let stats = e.stats();
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.insertions, 1);
        assert_eq!(stats.cache.coalesced, 3);
        assert_eq!(stats.completed, 1);
        // And afterwards the entry is a plain hit.
        assert_eq!(e.query(req).unwrap().outcome, CacheOutcome::Hit);
    }

    #[test]
    fn single_graph_engine_admits_up_to_max_queue() {
        // The auto per-graph quota must NOT sub-divide a single-graph
        // engine's queue: with per_graph_queue = 0 the whole max_queue is
        // admissible (regression test for the quota resolution).
        let e = engine(EngineConfig {
            workers: 1,
            max_queue: 8,
            per_graph_queue: 0,
            cache_bytes: 0,
            ..EngineConfig::default()
        });
        // Occupy the worker so subsequent submits stay queued.
        let slow = e
            .submit(
                QueryRequest::new(0)
                    .method(Method::MonteCarlo {
                        max_walks: Some(3_000_000),
                    })
                    .knobs(Knobs {
                        delta: Some(1e-8),
                        ..Knobs::default()
                    }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let queued: Vec<Ticket> = (0..8)
            .map(|s| {
                e.submit(QueryRequest::new(s))
                    .unwrap_or_else(|err| panic!("submit {s} of 8 shed under max_queue=8: {err}"))
            })
            .collect();
        assert!(matches!(
            e.submit(QueryRequest::new(9)),
            Err(ServeError::Overloaded { limit: 8, .. })
        ));
        for t in std::iter::once(slow).chain(queued) {
            t.wait().unwrap();
        }
    }

    #[test]
    fn coalesced_follower_honors_its_own_deadline() {
        // A follower coalesced onto a slow deadline-free leader must stop
        // waiting when its *own* deadline passes — typed, not unbounded.
        let e = engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let slow = QueryRequest::new(7)
            .method(Method::MonteCarlo {
                max_walks: Some(20_000_000),
            })
            .knobs(Knobs {
                delta: Some(1e-8),
                ..Knobs::default()
            });
        let leader = e.submit(slow).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let follower = e
            .submit(slow.deadline_in(Duration::from_millis(25)))
            .unwrap();
        match follower.wait() {
            Err(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("expected the follower's own deadline to fire, got {other:?}"),
        }
        // The leader is unaffected by its follower's impatience.
        assert!(leader.wait().is_ok());
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let e = engine(EngineConfig {
            workers: 1,
            max_queue: 2,
            cache_bytes: 0,
            ..EngineConfig::default()
        });
        // Submit a burst without waiting: either all fit or some shed
        // with the *typed* error, and the counter matches.
        let tickets: Vec<_> = (0..8).map(|s| e.submit(QueryRequest::new(s))).collect();
        let shed = tickets.iter().filter(|t| t.is_err()).count();
        for t in tickets {
            match t {
                Ok(ticket) => {
                    ticket.wait().unwrap();
                }
                Err(e) => assert!(matches!(e, ServeError::Overloaded { .. })),
            }
        }
        assert_eq!(e.stats().shed_overload as usize, shed);
    }

    #[test]
    fn canonicalization_makes_nearby_knobs_share_entries() {
        let e = engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let a = e
            .query(QueryRequest::new(5).knobs(Knobs {
                delta: Some(1e-3),
                ..Knobs::default()
            }))
            .unwrap();
        // Sub-percent knob jitter lands in the same bucket: a hit, and
        // byte-equal because both computed with the canonical knobs.
        let b = e
            .query(QueryRequest::new(5).knobs(Knobs {
                delta: Some(1.004e-3),
                ..Knobs::default()
            }))
            .unwrap();
        assert_eq!(b.outcome, CacheOutcome::Hit);
        assert!(a.result.bitwise_eq(&b.result));
        // A 2x knob change is a genuinely different query.
        let c = e
            .query(QueryRequest::new(5).knobs(Knobs {
                delta: Some(2e-3),
                ..Knobs::default()
            }))
            .unwrap();
        assert_eq!(c.outcome, CacheOutcome::Miss);
    }

    #[test]
    fn engine_is_shared_across_client_threads() {
        let e = Arc::new(engine(EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        }));
        let mut handles = Vec::new();
        for c in 0u32..4 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                for s in 0..8 {
                    out.push(e.query(QueryRequest::new((c * 8 + s) % 40)).unwrap());
                }
                out
            }));
        }
        for h in handles {
            for resp in h.join().unwrap() {
                assert!(!resp.result.cluster.is_empty());
            }
        }
        // Concurrent identical requests may coalesce; every query is
        // accounted exactly once across the three outcomes.
        let stats = e.stats();
        assert_eq!(
            stats.completed + stats.cache.hits + stats.cache.coalesced,
            32
        );
    }

    #[test]
    fn params_table_is_bounded_under_knob_sweeps() {
        let e = engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        // Sweep p_f across 7 decades: >100 distinct quantization buckets
        // at 16 buckets/decade, each cheap to serve (p_f only scales the
        // walk count logarithmically).
        for i in 0..100 {
            let knobs = Knobs {
                p_f: 10f64.powf(-1.0 - 7.0 * i as f64 / 99.0),
                ..Knobs::default()
            };
            e.query(QueryRequest::new(0).knobs(knobs)).unwrap();
        }
        assert!(
            e.front.params_table.lock().unwrap().len() <= 64,
            "params table must stay bounded"
        );
    }

    #[test]
    fn phase_timings_populated_for_workspace_methods() {
        let e = engine(EngineConfig {
            workers: 1,
            cache_bytes: 0,
            ..EngineConfig::default()
        });
        let r = e.query(QueryRequest::new(2)).unwrap();
        assert!(r.timing.estimate_ns > 0);
        assert!(r.timing.estimate_ns >= r.timing.push_ns);
        assert!(r.timing.total_ns >= r.timing.estimate_ns + r.timing.sweep_ns);
        // Exact power iteration bypasses the workspace: no push/walk split.
        let r = e.query(QueryRequest::new(2).method(Method::Exact)).unwrap();
        assert_eq!(r.timing.push_ns, 0);
        assert_eq!(r.timing.walk_ns, 0);
        assert!(r.timing.estimate_ns > 0);
    }
}

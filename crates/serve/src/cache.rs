//! Sharded, parameter-keyed LRU result cache.
//!
//! # Cache key and quantization
//!
//! A cached entry answers exactly one question: "what does this engine
//! return for query `(seed, method, knobs, rng_seed)` on this graph?".
//! The key therefore contains:
//!
//! * the **graph fingerprint** ([`hk_graph::Graph::fingerprint`]) — an
//!   entry cached against one graph can never be served for another, even
//!   if two engines share a process;
//! * the **seed node** and the **RNG stream seed** — the engine inherits
//!   the workspace layer's bit-identical RNG-stream scheme, so the pair
//!   `(seed, rng_seed)` pins the estimator's entire random trajectory;
//! * the **method**, encoded *exactly* (discriminant plus the bit
//!   patterns of its `f64`/`Option<u64>` fields). Method knobs like
//!   HK-Relax's `eps_a` are deployment constants, not per-request dials,
//!   so bucketing them would buy no extra hits and cost transparency;
//! * the **accuracy knobs** `(t, eps_r, delta, p_f)`, *quantized* to
//!   1/16-decade log buckets ([`ParamsKey`]).
//!
//! # Why quantize — and why the engine canonicalizes
//!
//! Accuracy knobs are order-of-magnitude choices (`delta = 1/n`,
//! `p_f = 1e-6`); callers that compute them at runtime produce values
//! that differ in the last ulps (`1.0 / n as f64` on two code paths) and
//! would never share cache entries under exact keying. A 1/16-decade
//! bucket (~15.5% relative width) merges those while keeping every
//! meaningfully different accuracy level distinct — the paper's own
//! sweeps step knobs by >=2x.
//!
//! Quantization must not break the cache's core contract, *a hit is
//! byte-identical to a recomputation*. If the key were a bucket but the
//! computation used the caller's raw knob, two requests in one bucket
//! would compute different answers and "hit" each other's entries. The
//! engine therefore **canonicalizes**: every request's knobs are snapped
//! to their bucket's canonical value ([`ParamsKey::canonical`]) *before*
//! computing, so all requests in a bucket run — and cache — the same
//! query. `run_batch` (the one-shot batch path) bypasses canonicalization
//! entirely: it takes a pre-built `HkprParams` and performs no caching.
//!
//! # Single-flight miss coalescing
//!
//! Canonicalization guarantees that two concurrent requests with the same
//! [`CacheKey`] would compute **identical bytes** — so computing both is
//! pure waste. The cache therefore tracks *in-flight* keys: the first
//! miss on a key becomes the **leader** ([`FlightClaim::Leader`]) and is
//! the only request enqueued for compute; every concurrent miss on the
//! same key becomes a **follower** ([`FlightClaim::Follower`]) that
//! blocks on the leader's outcome and receives the very same
//! `Arc<ClusterResult>` (or the leader's terminal error — including a
//! deadline shed or cancellation of the leader; followers share the
//! flight's fate, which the serving docs call out). Followers are counted
//! in [`CacheStats::coalesced`]; they are neither hits nor misses, so the
//! `misses == insertions` invariant is untouched.
//!
//! The invariant also survives **degraded answers** (anytime serving): a
//! query whose refinement the deadline watchdog cut short — in the walk
//! ladder *or* mid-push at an eps_r certificate checkpoint — returns
//! best-effort bytes that are *never cached* — the engine records no miss
//! and inserts nothing for it (it reports
//! [`CacheOutcome::Uncached`](crate::CacheOutcome::Uncached) and counts in
//! `EngineStats::degraded` instead), so `misses == insertions` keeps
//! counting exactly the full-accuracy compute path. Coalesced followers
//! of a degraded leader receive the same bytes *and* the same
//! [`Degraded`](crate::engine::Degraded) marker through flight
//! settlement, so nobody mistakes a coarsened-push answer for a
//! full-accuracy one.

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

use hk_cluster::{ClusterResult, Method};
use hk_graph::NodeId;
use hkpr_core::fxhash::{FxHashMap, FxHasher};
use hkpr_core::WalkKernel;
use std::sync::Arc;

/// Buckets per decade of the knob quantizer: `q(x) = round(16 log10 x)`.
const BUCKETS_PER_DECADE: f64 = 16.0;

/// Quantize a strictly positive knob to its 1/16-decade bucket index.
fn quantize(x: f64) -> i32 {
    (x.log10() * BUCKETS_PER_DECADE).round() as i32
}

/// Canonical (bucket-center) value of a bucket index.
fn dequantize(q: i32) -> f64 {
    10f64.powf(q as f64 / BUCKETS_PER_DECADE)
}

/// Quantized accuracy knobs `(t, eps_r, delta, p_f)` — the parameter part
/// of a [`CacheKey`], and the identity under which the engine
/// canonicalizes and builds `HkprParams` (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamsKey {
    t_q: i32,
    eps_q: i32,
    delta_q: i32,
    pf_q: i32,
}

impl ParamsKey {
    /// Quantize resolved knob values. Callers validate positivity first;
    /// this only asserts it.
    pub fn new(t: f64, eps_r: f64, delta: f64, p_f: f64) -> ParamsKey {
        debug_assert!(t > 0.0 && eps_r > 0.0 && delta > 0.0 && p_f > 0.0);
        ParamsKey {
            t_q: quantize(t),
            eps_q: quantize(eps_r),
            delta_q: quantize(delta),
            pf_q: quantize(p_f),
        }
    }

    /// Canonical knob values `(t, eps_r, delta, p_f)` of this bucket —
    /// what the engine actually computes with. The three probability-like
    /// knobs are clamped below 1 so a bucket center can never leave the
    /// open interval `HkprParams` requires (a request with `eps_r = 0.97`
    /// lands in the `1.0` bucket; it still computes with a valid value).
    pub fn canonical(&self) -> (f64, f64, f64, f64) {
        const BELOW_ONE: f64 = 0.99;
        (
            dequantize(self.t_q),
            dequantize(self.eps_q).min(BELOW_ONE),
            dequantize(self.delta_q).min(BELOW_ONE),
            dequantize(self.pf_q).min(BELOW_ONE),
        )
    }
}

/// Exact encoding of a [`Method`]: discriminant plus field bit patterns.
/// `Option<u64>` fields encode as `(present, value)` so `Some(u64::MAX)`
/// and `None` stay distinct.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MethodKey {
    tag: u8,
    a: u64,
    b: u64,
    c: u64,
}

impl MethodKey {
    /// Encode a method exactly (no quantization; see the module docs).
    pub fn new(method: Method) -> MethodKey {
        let opt = |o: Option<u64>| match o {
            Some(v) => (1u64, v),
            None => (0u64, 0u64),
        };
        let (tag, a, b, c) = match method {
            Method::Tea => (0u8, 0, 0, 0),
            Method::TeaPlus => (1, 0, 0, 0),
            Method::MonteCarlo { max_walks } => {
                let (p, v) = opt(max_walks);
                (2, p, v, 0)
            }
            Method::ClusterHkpr { eps, max_walks } => {
                let (p, v) = opt(max_walks);
                (3, eps.to_bits(), p, v)
            }
            Method::HkRelax { eps_a } => (4, eps_a.to_bits(), 0, 0),
            Method::Exact => (5, 0, 0, 0),
            Method::PrNibble { alpha, rmax } => (6, alpha.to_bits(), rmax.to_bits(), 0),
            Method::Fora { alpha } => (7, alpha.to_bits(), 0, 0),
        };
        MethodKey { tag, a, b, c }
    }
}

/// Stable wire/cache discriminant of a walk kernel. Kernels draw from
/// the RNG stream differently, so results computed under different
/// kernels are distinct cache identities even for identical knobs — a
/// sharded (Presampled) engine and a local (Lanes) engine sharing a
/// cache must never serve each other's bytes.
pub fn kernel_tag(kernel: WalkKernel) -> u8 {
    match kernel {
        WalkKernel::Stepwise => 0,
        WalkKernel::Presampled => 1,
        WalkKernel::Lanes => 2,
    }
}

/// Full identity of a cacheable query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural fingerprint of the graph the engine is bound to.
    pub fingerprint: u64,
    /// Seed node.
    pub seed: NodeId,
    /// RNG stream seed (pins the estimator's random trajectory).
    pub rng_seed: u64,
    /// Quantized accuracy knobs.
    pub params: ParamsKey,
    /// Exactly-encoded method.
    pub method: MethodKey,
    /// Walk-kernel discriminant ([`kernel_tag`]) — part of the identity
    /// because kernels consume the RNG stream differently.
    pub kernel: u8,
}

/// Hit/miss/eviction counters, readable while the cache is live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached result.
    pub hits: u64,
    /// Queries that went to the compute path *and produced a cacheable
    /// (full-accuracy) result* — always equals `insertions`. Shed,
    /// errored and degraded requests count as neither hit nor miss
    /// (degraded answers are never cached; they are `Uncached` and
    /// tallied in `EngineStats::degraded`).
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Requests that coalesced onto a concurrent identical miss
    /// (single-flight followers; neither hits nor misses).
    pub coalesced: u64,
    /// Bytes currently resident across all shards.
    pub resident_bytes: u64,
    /// Entries currently resident across all shards.
    pub resident_entries: u64,
}

struct Shard {
    map: FxHashMap<CacheKey, Arc<ClusterResult>>,
    /// LRU order, most recent at the back. May contain stale duplicates
    /// of recently re-touched keys; each key's live position is its
    /// *last* occurrence, tracked by `pending` occurrence counts so
    /// `evict_one` detects staleness in O(1) instead of scanning.
    order: VecDeque<CacheKey>,
    /// Occurrences of each key currently in `order`.
    pending: FxHashMap<CacheKey, u32>,
    bytes: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            pending: FxHashMap::default(),
            bytes: 0,
        }
    }

    /// Drop one pending occurrence of `key`, erasing its counter at zero.
    /// Returns the remaining count.
    fn drop_occurrence(&mut self, key: &CacheKey) -> u32 {
        match self.pending.get_mut(key) {
            Some(count) => {
                *count -= 1;
                let left = *count;
                if left == 0 {
                    self.pending.remove(key);
                }
                left
            }
            None => 0,
        }
    }

    /// Drop the least-recently-used entry; returns false if empty.
    fn evict_one(&mut self) -> bool {
        while let Some(key) = self.order.pop_front() {
            // A key can appear multiple times (every touch pushes it
            // again); only its final occurrence is live.
            if self.drop_occurrence(&key) > 0 {
                continue;
            }
            if let Some(entry) = self.map.remove(&key) {
                self.bytes -= entry.memory_bytes();
                return true;
            }
        }
        false
    }

    /// Re-queue `key` as most recently used, compacting the stale-tag
    /// queue if touches have let it outgrow the map.
    fn touch(&mut self, key: CacheKey) {
        self.order.push_back(key);
        *self.pending.entry(key).or_insert(0) += 1;
        if self.order.len() > 4 * self.map.len().max(8) {
            // Rebuild keeping only each live key's last occurrence:
            // walking back-to-front, that is the first time a key shows.
            let mut compact = VecDeque::with_capacity(self.map.len());
            let mut seen: FxHashMap<CacheKey, ()> = FxHashMap::default();
            for key in std::mem::take(&mut self.order).into_iter().rev() {
                if self.map.contains_key(&key) && seen.insert(key, ()).is_none() {
                    compact.push_front(key);
                }
            }
            self.order = compact;
            self.pending = self.order.iter().map(|&k| (k, 1)).collect();
        }
    }
}

/// Sharded LRU over `(CacheKey -> Arc<ClusterResult>)` with a global byte
/// budget split evenly across shards. Sharding keeps the engine's worker
/// pool from serializing on one mutex; the per-shard budget makes
/// eviction a local decision.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    /// Keys whose computation is in flight, with the followers waiting on
    /// the leader's outcome. A key is present from the leader's
    /// [`claim_flight`](Self::claim_flight) until its
    /// [`settle_flight`](Self::settle_flight).
    flights: Mutex<FxHashMap<CacheKey, Vec<mpsc::Sender<FlightResult>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

/// Terminal outcome of one in-flight computation, broadcast to every
/// coalesced follower: the shared result bytes (plus the leader's
/// [`Degraded`](crate::engine::Degraded) marker when refinement was cut
/// short — followers share the flight's accuracy, not just its bytes),
/// or the leader's error.
pub type FlightResult =
    Result<(Arc<ClusterResult>, Option<crate::engine::Degraded>), crate::engine::ServeError>;

/// What [`ResultCache::claim_flight`] decided about a missed key.
pub enum FlightClaim {
    /// No computation of this key is in flight; the caller must compute
    /// and then [`settle_flight`](ResultCache::settle_flight).
    Leader,
    /// An identical computation is already in flight; wait for its
    /// broadcast instead of computing.
    Follower(mpsc::Receiver<FlightResult>),
}

impl ResultCache {
    /// A cache spending at most ~`budget_bytes` across `shards` shards
    /// (each shard holds at least one entry regardless, so a single
    /// oversized result does not wedge the cache).
    pub fn new(budget_bytes: usize, shards: usize) -> ResultCache {
        let shards = shards.clamp(1, 1024);
        ResultCache {
            shard_budget: budget_bytes / shards,
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            flights: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look `key` up, refreshing its LRU position and counting a hit on
    /// success. A probe that finds nothing is *not* counted as a miss —
    /// the engine calls [`record_miss`](Self::record_miss) only when the
    /// request is actually computed at full accuracy and inserted, so
    /// shed, errored and degraded requests never skew the hit/miss ratio
    /// (`misses == insertions` holds by construction).
    pub fn get(&self, key: &CacheKey) -> Option<Arc<ClusterResult>> {
        let mut shard = self.shard_of(key).lock().unwrap();
        match shard.map.get(key).cloned() {
            Some(entry) => {
                shard.touch(*key);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => None,
        }
    }

    /// Count one miss (a query that went to the compute path; see
    /// [`get`](Self::get)).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Claim `key`'s computation (single-flight): the first claimer since
    /// the last [`settle_flight`](Self::settle_flight) becomes the
    /// leader; later claimers become followers and are counted in
    /// [`CacheStats::coalesced`]. Callers claim only after a failed
    /// [`get`](Self::get); a leader **must** eventually settle (success
    /// or error), or followers block until the engine disconnects.
    pub fn claim_flight(&self, key: CacheKey) -> FlightClaim {
        let mut flights = self.flights.lock().unwrap();
        match flights.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut waiters) => {
                let (tx, rx) = mpsc::channel();
                waiters.get_mut().push(tx);
                drop(flights);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                FlightClaim::Follower(rx)
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Vec::new());
                FlightClaim::Leader
            }
        }
    }

    /// Broadcast `key`'s terminal outcome to every coalesced follower and
    /// close the flight (the next miss on the key leads a new one). On
    /// success the leader inserts into the cache *before* settling, so a
    /// racing request either coalesces or hits — it never recomputes.
    pub fn settle_flight(&self, key: &CacheKey, result: FlightResult) {
        let waiters = self.flights.lock().unwrap().remove(key).unwrap_or_default();
        for tx in waiters {
            // A follower that gave up (dropped its ticket) is skipped.
            let _ = tx.send(result.clone());
        }
    }

    /// Insert (or refresh) `key`, evicting least-recently-used entries
    /// until the shard respects its byte budget again.
    pub fn insert(&self, key: CacheKey, value: Arc<ClusterResult>) {
        let cost = value.memory_bytes();
        let mut shard = self.shard_of(&key).lock().unwrap();
        if let Some(old) = shard.map.insert(key, value) {
            shard.bytes -= old.memory_bytes();
        }
        shard.bytes += cost;
        shard.touch(key);
        let mut evicted = 0u64;
        while shard.bytes > self.shard_budget && shard.map.len() > 1 {
            if !shard.evict_one() {
                break;
            }
            evicted += 1;
        }
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Snapshot the counters plus resident totals.
    pub fn stats(&self) -> CacheStats {
        let (mut bytes, mut entries) = (0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            bytes += s.bytes as u64;
            entries += s.map.len() as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            resident_bytes: bytes,
            resident_entries: entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkpr_core::{HkprEstimate, QueryStats};

    fn result_of_size(members: usize) -> Arc<ClusterResult> {
        Arc::new(ClusterResult {
            cluster: (0..members as NodeId).collect(),
            conductance: 0.5,
            estimate: HkprEstimate::new(),
            stats: QueryStats::default(),
            support_size: members,
        })
    }

    fn key(seed: NodeId) -> CacheKey {
        CacheKey {
            fingerprint: 7,
            seed,
            rng_seed: 1,
            params: ParamsKey::new(5.0, 0.5, 1e-4, 1e-6),
            method: MethodKey::new(Method::TeaPlus),
            kernel: kernel_tag(WalkKernel::Lanes),
        }
    }

    #[test]
    fn kernel_is_part_of_the_identity() {
        let cache = ResultCache::new(1 << 20, 2);
        let lanes = key(3);
        let sharded = CacheKey {
            kernel: kernel_tag(WalkKernel::Presampled),
            ..lanes
        };
        cache.insert(lanes, result_of_size(4));
        assert!(cache.get(&lanes).is_some());
        assert!(cache.get(&sharded).is_none());
    }

    #[test]
    fn quantizer_buckets_nearby_values_and_separates_decades() {
        let a = ParamsKey::new(5.0, 0.5, 1e-4, 1e-6);
        // Last-ulp / sub-percent perturbations land in the same bucket.
        let b = ParamsKey::new(5.0 * (1.0 + 1e-12), 0.5001, 1.001e-4, 1e-6);
        assert_eq!(a, b);
        // A 2x change in any knob is a different bucket.
        assert_ne!(a, ParamsKey::new(10.0, 0.5, 1e-4, 1e-6));
        assert_ne!(a, ParamsKey::new(5.0, 0.25, 1e-4, 1e-6));
        assert_ne!(a, ParamsKey::new(5.0, 0.5, 2e-4, 1e-6));
        assert_ne!(a, ParamsKey::new(5.0, 0.5, 1e-4, 2e-6));
    }

    #[test]
    fn canonical_values_stay_in_bucket_and_in_range() {
        for knob in [1e-8, 3.3e-4, 0.05, 0.5, 0.97] {
            let k = ParamsKey::new(5.0, knob, knob, knob);
            let (t, eps, delta, pf) = k.canonical();
            assert!((t - 5.0).abs() / 5.0 < 0.08, "t bucket width");
            for c in [eps, delta, pf] {
                assert!(c > 0.0 && c < 1.0, "canonical {c} out of range");
                // Within one bucket (~7.5% half-width) of the request,
                // except when the below-one clamp engages.
                assert!(c / knob < 1.12 && knob / c < 1.12, "{c} vs {knob}");
            }
        }
        // Idempotence: canonical values quantize back to their own bucket.
        let k = ParamsKey::new(7.3, 0.4, 2e-5, 1e-6);
        let (t, eps, delta, pf) = k.canonical();
        assert_eq!(k, ParamsKey::new(t, eps, delta, pf));
    }

    #[test]
    fn method_keys_distinguish_variants_and_fields() {
        let mk = MethodKey::new;
        assert_ne!(mk(Method::Tea), mk(Method::TeaPlus));
        assert_ne!(
            mk(Method::MonteCarlo { max_walks: None }),
            mk(Method::MonteCarlo {
                max_walks: Some(u64::MAX)
            })
        );
        assert_ne!(
            mk(Method::HkRelax { eps_a: 1e-5 }),
            mk(Method::HkRelax { eps_a: 1e-6 })
        );
        assert_eq!(
            mk(Method::PrNibble {
                alpha: 0.15,
                rmax: 1e-7
            }),
            mk(Method::PrNibble {
                alpha: 0.15,
                rmax: 1e-7
            })
        );
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        // Budget that fits roughly two of the three entries in the single
        // shard.
        let per_entry = result_of_size(100).memory_bytes();
        let cache = ResultCache::new(per_entry * 2 + per_entry / 2, 1);
        cache.insert(key(0), result_of_size(100));
        cache.insert(key(1), result_of_size(100));
        assert!(cache.get(&key(0)).is_some()); // 0 is now more recent than 1
        cache.insert(key(2), result_of_size(100));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(cache.get(&key(1)).is_none(), "LRU entry 1 evicted");
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        // An empty probe counts nothing; misses are recorded explicitly
        // by the compute path.
        assert_eq!(stats.misses, 0);
        cache.record_miss();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.resident_entries, 2);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let cache = ResultCache::new(1 << 20, 2);
        cache.insert(key(0), result_of_size(10));
        let before = cache.stats().resident_bytes;
        cache.insert(key(0), result_of_size(10));
        assert_eq!(cache.stats().resident_bytes, before);
        assert_eq!(cache.stats().resident_entries, 1);
    }

    #[test]
    fn single_oversized_entry_survives() {
        let cache = ResultCache::new(8, 1); // absurdly small budget
        cache.insert(key(0), result_of_size(1000));
        assert!(
            cache.get(&key(0)).is_some(),
            "a lone entry is kept even over budget"
        );
        cache.insert(key(1), result_of_size(1000));
        assert_eq!(cache.stats().resident_entries, 1);
    }

    #[test]
    fn single_flight_claims_lead_then_follow_then_broadcast() {
        let cache = ResultCache::new(1 << 20, 2);
        let k = key(7);
        assert!(matches!(cache.claim_flight(k), FlightClaim::Leader));
        let follow = |cache: &ResultCache| match cache.claim_flight(k) {
            FlightClaim::Follower(rx) => rx,
            FlightClaim::Leader => panic!("claim during a flight must follow"),
        };
        let f1 = follow(&cache);
        let f2 = follow(&cache);
        assert_eq!(cache.stats().coalesced, 2);
        let result = result_of_size(5);
        cache.insert(k, Arc::clone(&result));
        cache.settle_flight(&k, Ok((Arc::clone(&result), None)));
        for rx in [f1, f2] {
            let (got, degraded) = rx.recv().unwrap().unwrap();
            assert!(
                Arc::ptr_eq(&got, &result),
                "followers must receive the identical bytes"
            );
            assert!(degraded.is_none());
        }
        // The flight is closed: the next miss leads a fresh one.
        assert!(matches!(cache.claim_flight(k), FlightClaim::Leader));
        cache.settle_flight(&k, Ok((result, None)));
        // Coalescing never skews the miss/insert invariant.
        let stats = cache.stats();
        assert_eq!(stats.misses, 0); // record_miss is the engine's job
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.coalesced, 2);
    }

    #[test]
    fn failed_flight_broadcasts_the_error() {
        let cache = ResultCache::new(1 << 20, 1);
        let k = key(3);
        assert!(matches!(cache.claim_flight(k), FlightClaim::Leader));
        let rx = match cache.claim_flight(k) {
            FlightClaim::Follower(rx) => rx,
            FlightClaim::Leader => panic!("must follow"),
        };
        let err = crate::engine::ServeError::Overloaded {
            queue_len: 1,
            limit: 1,
        };
        cache.settle_flight(&k, Err(err.clone()));
        assert_eq!(rx.recv().unwrap().unwrap_err(), err);
        // Settling an unknown key is a harmless no-op.
        cache.settle_flight(&key(99), Err(err));
    }

    #[test]
    fn heavy_touching_compacts_the_order_queue() {
        let cache = ResultCache::new(1 << 20, 1);
        cache.insert(key(0), result_of_size(4));
        cache.insert(key(1), result_of_size(4));
        for _ in 0..1000 {
            assert!(cache.get(&key(0)).is_some());
            assert!(cache.get(&key(1)).is_some());
        }
        let shard = cache.shards[0].lock().unwrap();
        assert!(
            shard.order.len() <= 64,
            "order queue must stay compact, got {}",
            shard.order.len()
        );
    }
}

//! Hub-aware precomputation: pinned full-accuracy answers for the
//! highest-degree seeds of every resident graph.
//!
//! Diffusion-estimation cost concentrates on high-degree hubs (Vial &
//! Subramanian), and hub seeds dominate real community-detection
//! workloads (Kloster & Gleich) — exactly the Zipf traffic the serving
//! benchmarks replay. The [`HubStore`] exploits that skew: when a graph
//! becomes resident, a background build precomputes the full
//! [`ClusterResult`] for its top-K highest-degree seeds under the
//! engine's **default knobs** and pins the bytes under the same
//! fingerprint-carrying [`CacheKey`] the shared result cache uses. The
//! scheduler consults the store before its cache, so Zipf head traffic
//! is answered instantly even on a completely cold cache — reported as
//! [`CacheOutcome::Precomputed`](crate::CacheOutcome::Precomputed).
//!
//! # Bitwise identity
//!
//! A precomputed answer must be indistinguishable from a cold
//! recomputation. The build therefore runs the scheduler's own
//! [`execute`] core — `estimate_in` + `sweep_in` on a scratch configured
//! with the engine's walk-thread count and walk kernel — under the
//! *canonicalized* default knobs (the same [`ParamsKey`] bucket snap the
//! submit path applies) and RNG stream 0. Every ingredient of the cache
//! key is reproduced exactly, so the stored bytes are byte-equal to what
//! a worker would compute for the same request (property-tested).
//!
//! # Selection, budget, staleness
//!
//! * **Selection** is deterministic: seeds ordered by (degree
//!   descending, node id ascending), top K, zero-degree nodes skipped.
//!   Processing follows that order too — the degree-sorted build
//!   frontier touches the hottest adjacency rows while they are warm.
//! * **Budget**: the store pins at most `byte_budget` bytes across all
//!   graphs (0 = unlimited); a build stops adding entries once the next
//!   result would not fit. First-come within the budget — size it as
//!   `graphs x top_k x` typical result size.
//! * **Staleness is free**: entries are keyed by graph fingerprint, so a
//!   *different* snapshot registered under the same name can never be
//!   served a stale answer, while evict/reload cycles of the *same*
//!   structure keep their precomputed entries valid — the exact argument
//!   the shared result cache already relies on. Builds dedupe per
//!   fingerprint, so a reload never recomputes the hub set.
//!
//! Builds run on detached background threads **after** the graph is
//! queryable — a load never waits on precomputation, and queries that
//! arrive mid-build simply miss the store and take the normal path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use hk_cluster::{ClusterResult, LocalClusterer, Method, QueryScratch};
use hk_graph::NodeId;
use hkpr_core::fxhash::{FxHashMap, FxHashSet};
use hkpr_core::WalkKernel;

use crate::cache::{kernel_tag, CacheKey, MethodKey};
use crate::engine::{execute, GraphFront, Knobs};

/// Counters of a [`HubStore`] (all zero when hub precomputation is
/// disabled), surfaced by
/// [`MultiEngine::hub_stats`](crate::MultiEngine::hub_stats) and the
/// gateway's `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Queries answered from the store
    /// ([`CacheOutcome::Precomputed`](crate::CacheOutcome::Precomputed)).
    pub hits: u64,
    /// Precomputed seeds currently pinned, across all graphs.
    pub precomputed_seeds: u64,
    /// Background builds completed (one per distinct graph fingerprint).
    pub builds: u64,
    /// Total wall-clock nanoseconds spent in completed builds.
    pub build_ns: u64,
    /// Bytes pinned by precomputed results.
    pub resident_bytes: u64,
}

/// Mutable build-side state (pinned bytes, dedupe set, idle tracking).
#[derive(Default)]
struct BuildState {
    /// Fingerprints claimed by a build (running or done) — the dedupe
    /// that makes evict/reload cycles free.
    claimed: FxHashSet<u64>,
    /// Builds currently running ([`HubStore::wait_idle`] waits on 0).
    in_flight: usize,
    /// Bytes pinned across all graphs (the budgeted quantity).
    bytes: usize,
}

/// Pinned precomputed answers for top-degree seeds. See the
/// [module docs](self). Owned by [`crate::MultiEngine`]; one store spans
/// every resident graph (keys carry the fingerprint).
pub(crate) struct HubStore {
    /// Seeds precomputed per graph (the K of top-K).
    top_k: usize,
    /// Byte budget across all graphs; 0 = unlimited.
    byte_budget: usize,
    /// Walk-phase threads of the build scratch — must match the serving
    /// pool's, or the stored bytes would diverge from a recomputation.
    walk_threads: usize,
    /// Walk kernel of the build scratch (cache-key relevant).
    walk_kernel: WalkKernel,
    pinned: Mutex<FxHashMap<CacheKey, Arc<ClusterResult>>>,
    state: Mutex<BuildState>,
    /// Signals `in_flight` reaching 0.
    idle: Condvar,
    hits: AtomicU64,
    builds: AtomicU64,
    build_ns: AtomicU64,
}

impl HubStore {
    pub(crate) fn new(
        top_k: usize,
        byte_budget: usize,
        walk_threads: usize,
        walk_kernel: WalkKernel,
    ) -> HubStore {
        HubStore {
            top_k,
            byte_budget,
            walk_threads: walk_threads.max(1),
            walk_kernel,
            pinned: Mutex::new(FxHashMap::default()),
            state: Mutex::new(BuildState::default()),
            idle: Condvar::new(),
            hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            build_ns: AtomicU64::new(0),
        }
    }

    /// Probe the store for an exact key match, counting a hit on success.
    /// The key's fingerprint/params/kernel/rng components make a stale or
    /// differently-configured answer unmatchable by construction.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<Arc<ClusterResult>> {
        let hit = self.pinned.lock().unwrap().get(key).cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Start a background build for `front`'s graph unless its
    /// fingerprint was already claimed. Returns immediately — the graph
    /// serves normal (miss-path) queries while the build runs.
    pub(crate) fn spawn_build(self: &Arc<HubStore>, front: &Arc<GraphFront>) {
        if self.top_k == 0 {
            return;
        }
        let fingerprint = front.fingerprint();
        {
            let mut st = self.state.lock().unwrap();
            if !st.claimed.insert(fingerprint) {
                return;
            }
            st.in_flight += 1;
        }
        let store = Arc::clone(self);
        let front = Arc::clone(front);
        let spawned = std::thread::Builder::new()
            .name("hk-hub-build".into())
            .spawn(move || {
                store.build(&front);
                let mut st = store.state.lock().unwrap();
                st.in_flight -= 1;
                store.idle.notify_all();
            });
        if spawned.is_err() {
            // Could not spawn: roll the claim back so a later routing
            // call retries the build.
            let mut st = self.state.lock().unwrap();
            st.claimed.remove(&fingerprint);
            st.in_flight -= 1;
            self.idle.notify_all();
        }
    }

    /// Precompute the top-K hub seeds of one graph. Runs on the build
    /// thread; every step mirrors the scheduler's submit/execute pipeline
    /// so the stored bytes are bit-identical to a cold recomputation.
    fn build(&self, front: &GraphFront) {
        let started = Instant::now();
        // Default knobs through the same canonicalization the submit path
        // applies — the stored key and the computation agree exactly.
        let Ok((params, params_key)) = front.canonical_params(&Knobs::default()) else {
            return;
        };
        let graph = front.graph();
        let mut seeds: Vec<NodeId> = (0..graph.num_nodes() as NodeId)
            .filter(|&v| graph.degree(v) > 0)
            .collect();
        // Deterministic hub selection: degree descending, id ascending.
        seeds.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        seeds.truncate(self.top_k);
        let mut scratch = QueryScratch::with_threads(self.walk_threads);
        scratch.workspace.set_walk_kernel(self.walk_kernel);
        let clusterer = LocalClusterer::new(graph);
        for seed in seeds {
            let Ok((result, _)) =
                execute(&clusterer, &mut scratch, seed, Method::TeaPlus, &params, 0)
            else {
                continue;
            };
            let cost = result.memory_bytes();
            {
                let mut st = self.state.lock().unwrap();
                if self.byte_budget > 0 && st.bytes + cost > self.byte_budget {
                    // Budget full: later (lower-degree, colder) seeds are
                    // the right ones to drop.
                    break;
                }
                st.bytes += cost;
            }
            let key = CacheKey {
                fingerprint: front.fingerprint(),
                seed,
                rng_seed: 0,
                params: params_key,
                method: MethodKey::new(Method::TeaPlus),
                kernel: kernel_tag(self.walk_kernel),
            };
            self.pinned.lock().unwrap().insert(key, Arc::new(result));
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        self.build_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Block until no build is running — what tests and benchmarks call
    /// to make "the store is populated" a deterministic precondition.
    pub(crate) fn wait_idle(&self) {
        let mut st = self.state.lock().unwrap();
        while st.in_flight > 0 {
            st = self.idle.wait(st).unwrap();
        }
    }

    pub(crate) fn stats(&self) -> HubStats {
        let (seeds, bytes) = {
            let pinned = self.pinned.lock().unwrap();
            let st = self.state.lock().unwrap();
            (pinned.len() as u64, st.bytes as u64)
        };
        HubStats {
            hits: self.hits.load(Ordering::Relaxed),
            precomputed_seeds: seeds,
            builds: self.builds.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
            resident_bytes: bytes,
        }
    }
}

impl std::fmt::Debug for HubStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HubStore")
            .field("top_k", &self.top_k)
            .field("byte_budget", &self.byte_budget)
            .field("stats", &self.stats())
            .finish()
    }
}

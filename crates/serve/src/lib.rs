#![warn(missing_docs)]

//! # hk-serve
//!
//! The serving layer of the TEA/TEA+ reproduction: a persistent,
//! multi-tenant [`QueryEngine`] that amortizes work across a stream of
//! local-clustering queries, plus the one-shot [`run_batch`] built on the
//! same execution core.
//!
//! The paper frames TEA/TEA+ as interactive query primitives and notes
//! (§6) that query streams parallelize embarrassingly. PR 1 made a single
//! query allocation-free on a reusable workspace; this crate makes a
//! *service* out of it:
//!
//! * **one shared, deadline-aware worker pool** sized to the host, each
//!   worker owning a long-lived [`hk_cluster::QueryScratch`] that serves
//!   every graph (a multi-graph [`MultiEngine`] runs one pool, not one
//!   per graph);
//! * an **earliest-deadline-first** work queue with a total bound and
//!   per-graph admission quotas — overflow is shed with
//!   [`ServeError::Overloaded`], late requests with
//!   [`ServeError::DeadlineExceeded`], and a request whose deadline
//!   passes *mid-run* is cancelled cooperatively (the scheduler's
//!   watchdog fires the job's [`hkpr_core::CancelToken`]);
//! * **anytime queries**: workers execute the estimator as a ladder of
//!   accuracy tiers, so mid-run cancellation means *stop refining* — if
//!   any tier completed, the response is a typed [`Degraded`] answer
//!   carrying the achieved [`AccuracyTier`] (its final tier is bitwise
//!   identical to an uninterrupted run); only a query that produced no
//!   tier at all fails with [`ServeError::Cancelled`]. Degraded answers
//!   are never cached;
//! * **robustness**: worker panics are contained per-job
//!   ([`ServeError::Internal`](ServeError::Internal), counted in
//!   [`EngineStats::panics`], the worker and its pool survive), transient
//!   registry load failures retry with capped exponential backoff, and a
//!   `testing` feature exposes failpoint-style fault injection
//!   (`fault` module) for the robustness test suite;
//! * a sharded, parameter-keyed LRU result cache
//!   ([`cache::ResultCache`]) keyed on seed + quantized accuracy knobs +
//!   graph fingerprint, with **single-flight miss coalescing**:
//!   concurrent identical misses block on one computation and all
//!   receive the identical bytes ([`CacheOutcome::Coalesced`], counted
//!   in `CacheStats::coalesced`);
//! * per-query [`QueryTiming`] (queue, push, walk, sweep) and a
//!   [`CacheOutcome`] on every response, plus scheduler counters
//!   ([`EngineStats`]: queued sheds vs mid-run cancellations, queue
//!   high-water mark, per-graph admission rejections);
//! * a multi-graph layer ([`registry`]): a [`GraphRegistry`] of named,
//!   lazily-loaded snapshots with `Arc` pinning and LRU eviction under a
//!   resident-byte budget, fronted by a [`MultiEngine`] that routes
//!   requests by graph name onto the shared pool (cache keys carry the
//!   graph fingerprint, so evict/reload cycles never invalidate cached
//!   results);
//! * **hub precomputation** ([`hub`]): with
//!   [`MultiEngineConfig::hub_top_k`] set, loading a graph kicks off a
//!   background build that pins full answers for its top-degree seeds,
//!   so skewed (Zipf) traffic is answered instantly even on a cold cache
//!   — reported as [`CacheOutcome::Precomputed`] and bit-identical to a
//!   cold recomputation.
//!
//! Determinism is inherited from the workspace layer's bit-identical RNG
//! streams, which is what makes the cache *and* coalescing sound: a
//! cached hit, a coalesced follower and a cold recomputation are
//! byte-equal (property-tested), and a batch run is bit-identical at any
//! thread count.
//!
//! ```
//! use std::sync::Arc;
//! use hk_serve::{EngineConfig, QueryEngine, QueryRequest, CacheOutcome};
//! use hk_graph::gen::planted_partition;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let graph = Arc::new(planted_partition(4, 40, 0.4, 0.02, &mut rng).unwrap().graph);
//! let engine = QueryEngine::new(graph, EngineConfig { workers: 2, ..EngineConfig::default() });
//!
//! let cold = engine.query(QueryRequest::new(7)).unwrap();
//! let warm = engine.query(QueryRequest::new(7)).unwrap();
//! assert_eq!(warm.outcome, CacheOutcome::Hit);
//! assert!(cold.result.bitwise_eq(&warm.result));
//! assert!(cold.result.cluster.contains(&7));
//! ```

pub mod cache;
pub mod engine;
#[cfg(feature = "testing")]
pub mod fault;
pub mod hub;
pub mod registry;

pub use cache::{
    kernel_tag, CacheKey, CacheStats, FlightClaim, FlightResult, MethodKey, ParamsKey, ResultCache,
};
pub use engine::{
    run_batch, run_batch_with_kernel, CacheOutcome, Degraded, EngineConfig, EngineStats, Knobs,
    QueryEngine, QueryRequest, QueryResponse, QueryTiming, ServeError, Ticket,
};
pub use hkpr_core::AccuracyTier;
pub use hub::HubStats;
pub use registry::{GraphRegistry, GraphServeStats, MultiEngine, MultiEngineConfig, RegistryStats};

//! Failpoint-style fault injection for robustness tests.
//!
//! Compiled only under the `testing` feature; production builds carry no
//! fault-injection code or state. Tests arm a named **site** with a
//! [`Fault`] and a trigger count; the corresponding `fire` call inside
//! the serving stack then errors, panics or stalls that many times before
//! reverting to a no-op. Sites currently wired:
//!
//! | site             | location                                  | `Error` means                     |
//! |------------------|-------------------------------------------|-----------------------------------|
//! | `registry.load`  | [`GraphRegistry::get`](crate::GraphRegistry::get), around the loader | the load attempt fails (retryable) |
//! | `cache.insert`   | worker result-cache insertion             | the insert is skipped (result still served) |
//! | `sched.dequeue`  | worker job pickup, before execution       | the job gets [`ServeError::Internal`](crate::ServeError::Internal) |
//! | `core.push_tier` | each certified push tier inside TEA+'s HK-Push+ ladder | the push stops as if cancelled: ≥1 tier certified degrades to a typed `Degraded` answer, 0 tiers maps to [`ServeError::Cancelled`](crate::ServeError::Cancelled) |
//!
//! `Panic` at any site exercises the worker panic guard / registry load
//! guard; `Delay` widens race windows deterministically (e.g. holding a
//! flight open so followers reliably coalesce).
//!
//! The registry is process-global, so tests that arm faults must
//! serialize (the `fault_injection` integration suite shares one mutex)
//! and disarm on exit — [`armed`] makes leaks visible.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed site does when its `fire` point is reached.
#[derive(Clone, Copy, Debug)]
pub enum Fault {
    /// Fail the operation with an injected error (site-specific meaning;
    /// see the module table).
    Error,
    /// Panic at the site (exercises panic containment).
    Panic,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
}

fn registry() -> &'static Mutex<HashMap<String, (Fault, u32)>> {
    static FAULTS: OnceLock<Mutex<HashMap<String, (Fault, u32)>>> = OnceLock::new();
    FAULTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arm `site` to trigger `fault` on its next `times` firings (then the
/// site reverts to a no-op). Re-arming replaces any previous setting.
pub fn inject(site: &str, fault: Fault, times: u32) {
    registry()
        .lock()
        .unwrap()
        .insert(site.to_string(), (fault, times));
}

/// Disarm every site.
pub fn clear_all() {
    registry().lock().unwrap().clear();
}

/// Sites currently armed with a nonzero trigger count (leak detection
/// for test teardown).
pub fn armed() -> Vec<String> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(s, _)| s.clone())
        .collect()
}

/// Fire `site`: consume one trigger if armed and act on it. `Err` carries
/// the injected failure text; `Panic` unwinds; `Delay` sleeps and
/// returns `Ok`.
pub(crate) fn fire(site: &str) -> Result<(), String> {
    let fault = {
        let mut faults = registry().lock().unwrap();
        match faults.get_mut(site) {
            Some((fault, times)) if *times > 0 => {
                *times -= 1;
                let fault = *fault;
                if *times == 0 {
                    faults.remove(site);
                }
                Some(fault)
            }
            _ => None,
        }
    };
    match fault {
        None => Ok(()),
        Some(Fault::Error) => Err(format!("injected fault at {site}")),
        Some(Fault::Panic) => panic!("injected panic at {site}"),
        Some(Fault::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

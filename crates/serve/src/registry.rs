//! Multi-graph serving: a named snapshot registry with lazy loading,
//! `Arc` pinning and LRU eviction, plus the [`MultiEngine`] front that
//! routes queries to per-graph worker pools.
//!
//! # Registry semantics
//!
//! A [`GraphRegistry`] maps **names** to **loaders** (a `.hkg` path or an
//! arbitrary closure). Nothing is loaded at registration: the first
//! [`get`](GraphRegistry::get) for a name runs its loader, accounts the
//! graph's [`memory_bytes`](hk_graph::Graph::memory_bytes) against the
//! registry's resident-byte budget, and then evicts least-recently-used
//! *other* graphs until the budget holds again (the graph just requested
//! is never its own eviction victim, so a single oversized snapshot still
//! serves).
//!
//! **Pinning is `Arc`, not bookkeeping.** Eviction only removes the
//! registry's reference; every caller that obtained the graph keeps a
//! live `Arc`, so an in-flight query can never observe a freed graph —
//! the memory is returned when the last query finishes. `resident_bytes`
//! deliberately counts only registry-held graphs (the budget governs what
//! the registry *keeps*, not what callers still pin).
//!
//! **Reload is cheap to reason about.** A reloaded snapshot is
//! structurally identical, so it fingerprints identically, so result
//! cache entries keyed under that fingerprint are valid again the moment
//! the graph returns — load/evict/reload cycles never invalidate cached
//! results (property: the cache key already namespaces by fingerprint).
//!
//! Concurrent `get`s of one name load once: the first caller marks the
//! entry `Loading` and later callers wait on a condvar. A failed load
//! clears the mark and every waiter retries or reports the error. A
//! waiter with a deadline ([`get_within`](GraphRegistry::get_within) —
//! what [`MultiEngine`] routes [`crate::QueryRequest::deadline`] through)
//! waits only until that deadline and then reports
//! [`ServeError::DeadlineExceeded`] instead of sleeping through it.
//!
//! # MultiEngine
//!
//! [`MultiEngine`] owns a registry plus **one shared worker pool** (the
//! deadline-aware [`crate::engine`] scheduler) spanning every graph:
//! with 4 hot graphs on a 4-core host the service runs 4 workers, not
//! 16. Per resident graph it keeps only a lightweight *front* (the graph
//! pin plus the canonical-parameter memo table); jobs on the shared
//! queue carry their own `Arc<Graph>`, so evicting a graph just drops
//! the front — queued and running queries keep their pins and finish
//! normally, and no worker pool is torn down or rebuilt. All graphs
//! share one [`ResultCache`] (keys carry the graph fingerprint) and the
//! scheduler's per-graph admission quotas keep one graph's burst from
//! starving the others.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use hk_cluster::Method;
use hk_graph::{io, Graph, GraphError};
use hkpr_core::fxhash::FxHashMap;

use crate::cache::ResultCache;
use crate::engine::{
    admission_key_of, EngineConfig, EngineStats, GraphFront, QueryRequest, QueryResponse,
    Scheduler, ServeError, Ticket,
};
use crate::CacheOutcome;

/// How a registry entry produces its graph. Loaders run outside the
/// registry lock and may be called again after an eviction.
type Loader = dyn Fn() -> Result<Arc<Graph>, GraphError> + Send + Sync;

/// Residency state of one named entry.
enum Slot {
    /// Not resident; next `get` loads.
    Empty,
    /// A load is running on some thread; wait on the condvar.
    Loading,
    /// Resident and counted against the budget.
    Resident {
        graph: Arc<Graph>,
        bytes: usize,
        last_used: u64,
    },
}

/// Failed loads are retried up to this many attempts total.
const LOAD_ATTEMPTS: u32 = 4;
/// Default first-retry backoff (doubles per attempt).
const BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Default per-sleep backoff clamp.
const BACKOFF_CAP: Duration = Duration::from_millis(10);

struct Entry {
    loader: Arc<Loader>,
    slot: Slot,
    /// Earliest deadline among callers currently waiting behind this
    /// entry's in-flight load. The loading leader caps its retry-backoff
    /// sleeps at this instant, so a waiter's deadline error surfaces on
    /// time instead of after the full backoff schedule. Monotone-min
    /// while `Loading`; reset whenever the slot settles.
    earliest_waiter_deadline: Option<std::time::Instant>,
}

struct Inner {
    entries: FxHashMap<String, Entry>,
    /// Monotonic LRU clock; bumped on every touch.
    tick: u64,
    /// Σ bytes of `Resident` slots — the quantity the budget bounds.
    resident_bytes: usize,
}

/// Aggregate registry counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Loader invocations that succeeded (first loads + reloads).
    pub loads: u64,
    /// Loader invocations attempted, including failures and retries
    /// (`load_attempts - loads` = failed attempts).
    pub load_attempts: u64,
    /// Failed attempts that were retried after backoff (a load that
    /// succeeds on attempt `k` contributes `k - 1` here).
    pub load_retries: u64,
    /// Graphs evicted to respect the byte budget (or explicitly).
    pub evictions: u64,
    /// `get`s answered from a resident graph.
    pub resident_hits: u64,
    /// Bytes of all currently resident graphs.
    pub resident_bytes: u64,
    /// Number of currently resident graphs.
    pub resident_graphs: u64,
}

/// Named, lazily-loaded, LRU-evicted store of graph snapshots. See the
/// [module docs](self).
pub struct GraphRegistry {
    inner: Mutex<Inner>,
    /// Signals `Loading -> {Resident, Empty}` transitions.
    loaded: Condvar,
    /// Resident-byte budget; 0 means unlimited.
    budget: usize,
    loads: AtomicU64,
    load_attempts: AtomicU64,
    load_retries: AtomicU64,
    evictions: AtomicU64,
    resident_hits: AtomicU64,
    /// Retry backoff schedule `(base, cap)` for failed loads —
    /// adjustable so tests can use observable-scale sleeps.
    load_backoff: Mutex<(Duration, Duration)>,
}

impl GraphRegistry {
    /// A registry that keeps at most ~`max_resident_bytes` of snapshots
    /// resident (0 = unlimited). The bound is soft by exactly one rule:
    /// the most recently requested graph is always kept, even alone over
    /// budget.
    pub fn new(max_resident_bytes: usize) -> GraphRegistry {
        GraphRegistry {
            inner: Mutex::new(Inner {
                entries: FxHashMap::default(),
                tick: 0,
                resident_bytes: 0,
            }),
            loaded: Condvar::new(),
            budget: max_resident_bytes,
            loads: AtomicU64::new(0),
            load_attempts: AtomicU64::new(0),
            load_retries: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident_hits: AtomicU64::new(0),
            load_backoff: Mutex::new((BACKOFF_BASE, BACKOFF_CAP)),
        }
    }

    /// Override the failed-load retry backoff schedule (base doubles per
    /// attempt, clamped to `cap`). The defaults are ms-scale; tests dial
    /// this up to make deadline interactions observable.
    pub fn set_load_backoff(&self, base: Duration, cap: Duration) {
        *self.load_backoff.lock().unwrap() = (base, cap);
    }

    /// Register `name` with an arbitrary loader. Replacing an existing
    /// entry evicts any resident graph first (its cached results stay
    /// valid only if the new loader produces the same structure, which is
    /// the fingerprint key's problem, not ours).
    pub fn register<F>(&self, name: &str, loader: F)
    where
        F: Fn() -> Result<Arc<Graph>, GraphError> + Send + Sync + 'static,
    {
        let mut inner = self.inner.lock().unwrap();
        // Wait out a concurrent load of the entry being replaced so its
        // completion cannot resurrect the old graph's accounting.
        while matches!(
            inner.entries.get(name).map(|e| &e.slot),
            Some(Slot::Loading)
        ) {
            inner = self.loaded.wait(inner).unwrap();
        }
        if let Some(old) = inner.entries.remove(name) {
            if let Slot::Resident { bytes, .. } = old.slot {
                inner.resident_bytes -= bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.entries.insert(
            name.to_string(),
            Entry {
                loader: Arc::new(loader),
                slot: Slot::Empty,
                earliest_waiter_deadline: None,
            },
        );
    }

    /// Register `name` as a snapshot file loaded via
    /// [`hk_graph::io::load_binary`] (v1 or v2 by magic; v2 loads onto
    /// the zero-copy arena backend).
    pub fn register_path<P: Into<std::path::PathBuf>>(&self, name: &str, path: P) {
        let path = path.into();
        self.register(name, move || io::load_binary(&path).map(Arc::new));
    }

    /// Register `name` as a v2 snapshot served from a read-only mmap.
    #[cfg(feature = "mmap")]
    pub fn register_path_mmap<P: Into<std::path::PathBuf>>(&self, name: &str, path: P) {
        let path = path.into();
        self.register(name, move || io::load_binary_mmap(&path).map(Arc::new));
    }

    /// Register a pre-built graph (tests, generators). The registry still
    /// tracks residency and bytes normally; "reload" after an eviction
    /// just clones the `Arc` (the loader pins the graph, so this variant
    /// trades reclaimability for zero reload cost).
    pub fn register_graph(&self, name: &str, graph: Arc<Graph>) {
        self.register(name, move || Ok(Arc::clone(&graph)));
    }

    /// Names of all registered graphs (resident or not), unordered.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().unwrap().entries.keys().cloned().collect()
    }

    /// Currently resident graphs as `(name, bytes)`, unordered.
    pub fn resident(&self) -> Vec<(String, usize)> {
        let inner = self.inner.lock().unwrap();
        inner
            .entries
            .iter()
            .filter_map(|(name, e)| match &e.slot {
                Slot::Resident { bytes, .. } => Some((name.clone(), *bytes)),
                _ => None,
            })
            .collect()
    }

    /// Fetch `name`, loading it if necessary, bumping its LRU position,
    /// and evicting over-budget LRU graphs. Returns the pinned graph plus
    /// the names evicted by this call (so a front holding per-graph
    /// resources — worker pools, say — can release them). Waits without
    /// bound behind a concurrent load; deadline-bearing callers use
    /// [`get_within`](Self::get_within).
    pub fn get(&self, name: &str) -> Result<(Arc<Graph>, Vec<String>), ServeError> {
        self.get_within(name, None)
    }

    /// [`get`](Self::get) with a deadline bound on the *wait behind a
    /// concurrent load*: a caller that finds the entry `Loading` waits on
    /// the condvar only until `deadline` and then returns
    /// [`ServeError::DeadlineExceeded`] — it must not sleep through its
    /// own deadline behind a slow or backoff-retrying loader. A caller
    /// that becomes the loading leader itself runs the loader to
    /// completion regardless (loaders are not cancellable; the engine
    /// re-checks the deadline right after routing, so a late leader is
    /// still shed before any compute is spent).
    pub fn get_within(
        &self,
        name: &str,
        deadline: Option<std::time::Instant>,
    ) -> Result<(Arc<Graph>, Vec<String>), ServeError> {
        let loader = {
            let mut inner = self.inner.lock().unwrap();
            loop {
                // Bump the LRU clock before borrowing the entry (wasted
                // ticks on wait iterations are harmless — it only needs
                // to be monotone).
                inner.tick += 1;
                let tick = inner.tick;
                let entry = inner
                    .entries
                    .get_mut(name)
                    .ok_or_else(|| ServeError::UnknownGraph(name.to_string()))?;
                match &mut entry.slot {
                    Slot::Resident {
                        graph, last_used, ..
                    } => {
                        *last_used = tick;
                        let graph = Arc::clone(graph);
                        self.resident_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((graph, Vec::new()));
                    }
                    Slot::Loading => match deadline {
                        None => inner = self.loaded.wait(inner).unwrap(),
                        Some(d) => {
                            let now = std::time::Instant::now();
                            if now >= d {
                                return Err(ServeError::DeadlineExceeded { late_by: now - d });
                            }
                            // Publish our deadline so the loading leader
                            // caps its retry-backoff sleeps at it: the
                            // error (or graph) must be settled by then,
                            // not after the full backoff schedule.
                            entry.earliest_waiter_deadline = Some(
                                entry
                                    .earliest_waiter_deadline
                                    .map_or(d, |earliest| earliest.min(d)),
                            );
                            let (guard, _) = self.loaded.wait_timeout(inner, d - now).unwrap();
                            inner = guard;
                        }
                    },
                    Slot::Empty => {
                        entry.slot = Slot::Loading;
                        entry.earliest_waiter_deadline = None;
                        break Arc::clone(&entry.loader);
                    }
                }
            }
        };

        // Load outside the lock: other names stay servable meanwhile. A
        // loader that *panics* (user closure) must not wedge the entry in
        // `Loading` — this guard resets the slot and wakes waiters on
        // unwind; the normal path disarms it and settles the slot itself.
        struct LoadGuard<'a> {
            reg: &'a GraphRegistry,
            name: &'a str,
            armed: bool,
        }
        impl Drop for LoadGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    let mut inner = self.reg.inner.lock().unwrap();
                    if let Some(entry) = inner.entries.get_mut(self.name) {
                        if matches!(entry.slot, Slot::Loading) {
                            entry.slot = Slot::Empty;
                            entry.earliest_waiter_deadline = None;
                        }
                    }
                    self.reg.loaded.notify_all();
                }
            }
        }
        let mut guard = LoadGuard {
            reg: self,
            name,
            armed: true,
        };
        // Transient load failures (I/O hiccup, snapshot mid-rotation) are
        // retried with capped exponential backoff before the error is
        // surfaced to callers; the budget is small and ms-scale so a
        // genuinely broken loader still reports promptly. A loader
        // *panic* is never retried — the guard resets the slot and the
        // panic propagates to the caller. Every backoff sleep is further
        // capped at the earliest deadline in play — the leader's own or
        // any condvar waiter's — so deadline-bearing callers are never
        // held past their budget by the retry schedule.
        let (backoff_base, backoff_cap) = *self.load_backoff.lock().unwrap();
        let mut attempt = 0u32;
        let result = loop {
            attempt += 1;
            self.load_attempts.fetch_add(1, Ordering::Relaxed);
            let attempt_result = {
                #[cfg(feature = "testing")]
                {
                    crate::fault::fire("registry.load")
                        .map_err(GraphError::Format)
                        .and_then(|()| loader())
                }
                #[cfg(not(feature = "testing"))]
                loader()
            };
            match attempt_result {
                Err(_) if attempt < LOAD_ATTEMPTS => {
                    self.load_retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = backoff_base * 2u32.saturating_pow(attempt - 1);
                    let mut sleep = backoff.min(backoff_cap);
                    let waiter = self
                        .inner
                        .lock()
                        .unwrap()
                        .entries
                        .get(name)
                        .and_then(|e| e.earliest_waiter_deadline);
                    let earliest = match (deadline, waiter) {
                        (Some(own), Some(w)) => Some(own.min(w)),
                        (own, w) => own.or(w),
                    };
                    if let Some(d) = earliest {
                        sleep = sleep.min(d.saturating_duration_since(std::time::Instant::now()));
                    }
                    if !sleep.is_zero() {
                        std::thread::sleep(sleep);
                    }
                }
                terminal => break terminal,
            }
        };
        guard.armed = false;

        let mut inner = self.inner.lock().unwrap();
        // The entry may have been `register`-replaced while we loaded;
        // only our `Loading` mark is ours to clear.
        let still_ours = matches!(
            inner.entries.get(name).map(|e| &e.slot),
            Some(Slot::Loading)
        );
        match result {
            Ok(graph) => {
                let bytes = graph.memory_bytes();
                if still_ours {
                    inner.tick += 1;
                    let tick = inner.tick;
                    let entry = inner.entries.get_mut(name).unwrap();
                    entry.slot = Slot::Resident {
                        graph: Arc::clone(&graph),
                        bytes,
                        last_used: tick,
                    };
                    entry.earliest_waiter_deadline = None;
                    inner.resident_bytes += bytes;
                }
                self.loads.fetch_add(1, Ordering::Relaxed);
                self.loaded.notify_all();
                let evicted = self.evict_over_budget(&mut inner, name);
                Ok((graph, evicted))
            }
            Err(e) => {
                if still_ours {
                    let entry = inner.entries.get_mut(name).unwrap();
                    entry.slot = Slot::Empty;
                    entry.earliest_waiter_deadline = None;
                }
                self.loaded.notify_all();
                Err(ServeError::GraphLoad {
                    graph: name.to_string(),
                    error: e.to_string(),
                })
            }
        }
    }

    /// Evict LRU residents (never `keep`) until the budget holds.
    fn evict_over_budget(&self, inner: &mut Inner, keep: &str) -> Vec<String> {
        let mut evicted = Vec::new();
        if self.budget == 0 {
            return evicted;
        }
        while inner.resident_bytes > self.budget {
            let victim = inner
                .entries
                .iter()
                .filter_map(|(n, e)| match &e.slot {
                    Slot::Resident { last_used, .. } if n != keep => Some((*last_used, n.clone())),
                    _ => None,
                })
                .min()
                .map(|(_, n)| n);
            match victim {
                Some(n) => {
                    self.evict_locked(inner, &n);
                    evicted.push(n);
                }
                None => break, // only `keep` is resident; the bound is soft
            }
        }
        evicted
    }

    fn evict_locked(&self, inner: &mut Inner, name: &str) -> bool {
        if let Some(entry) = inner.entries.get_mut(name) {
            if let Slot::Resident { bytes, .. } = entry.slot {
                entry.slot = Slot::Empty;
                inner.resident_bytes -= bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Explicitly evict `name` (a no-op unless resident). Pinned `Arc`s
    /// held by in-flight queries stay valid; the next `get` reloads.
    pub fn evict(&self, name: &str) -> bool {
        let mut inner = self.inner.lock().unwrap();
        self.evict_locked(&mut inner, name)
    }

    /// Bytes of all currently resident graphs (the budgeted quantity).
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().unwrap().resident_bytes
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().unwrap();
        let resident_graphs = inner
            .entries
            .values()
            .filter(|e| matches!(e.slot, Slot::Resident { .. }))
            .count() as u64;
        RegistryStats {
            loads: self.loads.load(Ordering::Relaxed),
            load_attempts: self.load_attempts.load(Ordering::Relaxed),
            load_retries: self.load_retries.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_hits: self.resident_hits.load(Ordering::Relaxed),
            resident_bytes: inner.resident_bytes as u64,
            resident_graphs,
        }
    }
}

impl std::fmt::Debug for GraphRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphRegistry")
            .field("budget_bytes", &self.budget)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Per-graph serving counters of a [`MultiEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphServeStats {
    /// Queries answered from the shared result cache.
    pub hits: u64,
    /// Queries computed by the shared worker pool.
    pub misses: u64,
    /// Queries coalesced onto a concurrent identical miss
    /// (single-flight followers).
    pub coalesced: u64,
    /// Queries answered from the hub store's precomputed pins
    /// ([`CacheOutcome::Precomputed`]).
    pub precomputed: u64,
    /// Queries that returned an error (estimator, shed, cancel, load…).
    pub errors: u64,
    /// Requests rejected by this graph's admission quota (counted for
    /// `submit` and `query` alike).
    pub admission_rejections: u64,
}

/// Sizing of a [`MultiEngine`]. The default is an unlimited registry
/// budget over one [`EngineConfig::default`] shared pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiEngineConfig {
    /// Scheduler configuration. `workers` sizes the **one shared pool**
    /// spanning all graphs (size it to the host, not to the number of
    /// graphs); `cache_bytes`/`cache_shards` size the single shared
    /// cache; `per_graph_queue` is the admission quota.
    pub engine: EngineConfig,
    /// Registry resident-byte budget (0 = unlimited).
    pub max_resident_bytes: usize,
    /// Hub precomputation: pin full answers for this many top-degree
    /// seeds per graph, built in the background at load time. `0`
    /// (default) disables the hub store. See [`crate::hub`].
    pub hub_top_k: usize,
    /// Byte budget of the hub store across all graphs (0 = unlimited).
    /// Only meaningful when `hub_top_k > 0`.
    pub hub_bytes: usize,
}

/// Routes [`QueryRequest`]s by registry name onto one shared
/// deadline-aware worker pool. See the [module docs](self) for lifecycle
/// and pinning rules.
pub struct MultiEngine {
    registry: GraphRegistry,
    /// The one shared pool. Jobs carry their own graph pin.
    sched: Scheduler,
    hop_c: f64,
    /// Lightweight per-resident-graph fronts (graph pin + canonical
    /// params). A front leaves this map when its graph is evicted, which
    /// releases the map's pin; in-flight jobs keep theirs.
    fronts: Mutex<FxHashMap<String, Arc<GraphFront>>>,
    per_graph: Mutex<FxHashMap<String, GraphServeStats>>,
    /// Hub precomputation store ([`MultiEngineConfig::hub_top_k`] > 0).
    hubs: Option<Arc<crate::hub::HubStore>>,
}

impl MultiEngine {
    /// An engine front over `registry`-style named graphs. Graphs are
    /// registered on the returned value's [`registry`](Self::registry).
    pub fn new(config: MultiEngineConfig) -> MultiEngine {
        let cache = (config.engine.cache_bytes > 0).then(|| {
            Arc::new(ResultCache::new(
                config.engine.cache_bytes,
                config.engine.cache_shards,
            ))
        });
        MultiEngine {
            registry: GraphRegistry::new(config.max_resident_bytes),
            // Multi-graph auto quota: a quarter of the queue per graph,
            // so one graph's burst cannot occupy every slot.
            sched: Scheduler::new(
                config.engine,
                cache,
                (config.engine.max_queue.max(1) / 4).max(1),
            ),
            hop_c: config.engine.hop_c,
            fronts: Mutex::new(FxHashMap::default()),
            per_graph: Mutex::new(FxHashMap::default()),
            hubs: (config.hub_top_k > 0).then(|| {
                Arc::new(crate::hub::HubStore::new(
                    config.hub_top_k,
                    config.hub_bytes,
                    config.engine.walk_threads,
                    config.engine.walk_kernel,
                ))
            }),
        }
    }

    /// The underlying registry (register/evict/inspect graphs here).
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The shared result cache, if caching is enabled.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.sched.cache()
    }

    /// Aggregate scheduler counters: completions, sheds (queued vs
    /// cancelled-running vs overload), queue high-water mark, worker
    /// count and the shared-cache stats (incl. coalesced followers).
    pub fn stats(&self) -> EngineStats {
        self.sched.stats()
    }

    /// Worker threads of the shared pool still running — scheduler
    /// liveness for health endpoints. Equals [`EngineStats::workers`] in
    /// a healthy engine; less means worker threads died outright.
    pub fn live_workers(&self) -> usize {
        self.sched.live_workers()
    }

    /// Resolve `graph` to its serving front, loading the snapshot if
    /// necessary and dropping fronts of graphs that are no longer
    /// resident (releasing their pins — the shared pool is untouched).
    /// `deadline` bounds any wait behind a concurrent load of the same
    /// graph (the request must not sleep through its own deadline).
    fn front_for(
        &self,
        graph: &str,
        deadline: Option<std::time::Instant>,
    ) -> Result<Arc<GraphFront>, ServeError> {
        let (snapshot, _evicted) = self.registry.get_within(graph, deadline)?;
        // Reconcile the fronts map with registry residency on every
        // routing call: explicit `registry().evict()`, `register()`
        // replacement, and concurrent-eviction races all drop graphs
        // without passing through this thread's `get`, and a retained
        // front would keep the evicted snapshot's memory pinned
        // indefinitely. (Residency is sampled before taking the fronts
        // lock; a graph evicted between the two is caught by the next
        // call's reconcile.)
        let resident: Vec<String> = self
            .registry
            .resident()
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        let mut fronts = self.fronts.lock().unwrap();
        fronts.retain(|name, _| resident.iter().any(|r| r == name));
        if let Some(front) = fronts.get(graph) {
            // Same resident snapshot => same front. (A reload produces a
            // new Arc; the stale front is replaced below so queries pin
            // the registry-accounted instance.)
            if Arc::ptr_eq(front.graph(), &snapshot) {
                return Ok(Arc::clone(front));
            }
        }
        let front = Arc::new(GraphFront::new(
            snapshot,
            admission_key_of(graph),
            self.hop_c,
        ));
        fronts.insert(graph.to_string(), Arc::clone(&front));
        // First sighting of this snapshot: kick off the background hub
        // build. Runs after the front is routable, so loading never waits
        // on precomputation; fingerprint dedupe makes evict/reload free.
        if let Some(hubs) = &self.hubs {
            hubs.spawn_build(&front);
        }
        Ok(front)
    }

    /// Submit a request against the named graph. Loading, routing, cache
    /// probing and single-flight claiming happen on the calling thread;
    /// compute happens on the shared pool, earliest deadline first.
    pub fn submit(&self, graph: &str, req: QueryRequest) -> Result<Ticket, ServeError> {
        self.front_for(graph, req.deadline).and_then(|front| {
            self.sched
                .submit_with_hubs(&front, req, self.hubs.as_deref())
        })
    }

    /// Submit and block for the answer, tallying per-graph counters.
    pub fn query(&self, graph: &str, req: QueryRequest) -> Result<QueryResponse, ServeError> {
        let outcome = self.submit(graph, req).and_then(Ticket::wait);
        let mut per_graph = self.per_graph.lock().unwrap();
        let stats = per_graph.entry(graph.to_string()).or_default();
        match &outcome {
            Ok(resp) if resp.outcome == CacheOutcome::Hit => stats.hits += 1,
            Ok(resp) if resp.outcome == CacheOutcome::Coalesced => stats.coalesced += 1,
            Ok(resp) if resp.outcome == CacheOutcome::Precomputed => stats.precomputed += 1,
            Ok(_) => stats.misses += 1,
            Err(_) => stats.errors += 1,
        }
        outcome
    }

    /// Convenience: a default TEA+ query for `seed` on `graph`.
    pub fn query_seed(
        &self,
        graph: &str,
        seed: hk_graph::NodeId,
        method: Method,
    ) -> Result<QueryResponse, ServeError> {
        self.query(graph, QueryRequest::new(seed).method(method))
    }

    /// Hub-store counters (all zero when [`MultiEngineConfig::hub_top_k`]
    /// is 0 — families still render, at zero, in `/metrics`).
    pub fn hub_stats(&self) -> crate::hub::HubStats {
        self.hubs
            .as_deref()
            .map(crate::hub::HubStore::stats)
            .unwrap_or_default()
    }

    /// Block until every in-flight hub build has finished. Builds are
    /// asynchronous by design (loading never waits on them); tests and
    /// benchmarks call this to make "the hub store is populated" a
    /// deterministic precondition. No-op when hubs are disabled.
    pub fn wait_hub_builds(&self) {
        if let Some(hubs) = &self.hubs {
            hubs.wait_idle();
        }
    }

    /// Per-graph serving counters, sorted by name: every registered
    /// graph plus every name queries were tallied under. Admission
    /// rejections are read live from the scheduler's quota accounting.
    pub fn per_graph_stats(&self) -> Vec<(String, GraphServeStats)> {
        let tallies: Vec<(String, GraphServeStats)> = self
            .per_graph
            .lock()
            .unwrap()
            .iter()
            .map(|(k, s)| (k.clone(), *s))
            .collect();
        let mut names = self.registry.names();
        for (name, _) in &tallies {
            if !names.contains(name) {
                names.push(name.clone());
            }
        }
        let mut v: Vec<(String, GraphServeStats)> = names
            .into_iter()
            .map(|name| {
                let mut s = tallies
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, s)| *s)
                    .unwrap_or_default();
                s.admission_rejections = self.sched.admission_rejections(admission_key_of(&name));
                (name, s)
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

impl std::fmt::Debug for MultiEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiEngine")
            .field("registry", &self.registry)
            .field("scheduler", &self.sched)
            .field("fronts", &self.fronts.lock().unwrap().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_graph::gen::planted_partition;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph(seed: u64) -> Arc<Graph> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Arc::new(
            planted_partition(3, 30, 0.35, 0.02, &mut rng)
                .unwrap()
                .graph,
        )
    }

    #[test]
    fn lazy_load_touch_and_explicit_evict() {
        let reg = GraphRegistry::new(0);
        let g = graph(1);
        reg.register_graph("a", Arc::clone(&g));
        assert_eq!(reg.stats().loads, 0);
        assert_eq!(reg.resident_bytes(), 0);
        let (got, evicted) = reg.get("a").unwrap();
        assert!(Arc::ptr_eq(&got, &g));
        assert!(evicted.is_empty());
        assert_eq!(reg.stats().loads, 1);
        assert_eq!(reg.resident_bytes(), g.memory_bytes());
        // Second get is a resident hit, not a reload.
        let _ = reg.get("a").unwrap();
        let s = reg.stats();
        assert_eq!((s.loads, s.resident_hits), (1, 1));
        // Evict, reload.
        assert!(reg.evict("a"));
        assert!(!reg.evict("a"));
        assert_eq!(reg.resident_bytes(), 0);
        let _ = reg.get("a").unwrap();
        assert_eq!(reg.stats().loads, 2);
    }

    #[test]
    fn unknown_name_and_failing_loader_are_typed() {
        let reg = GraphRegistry::new(0);
        assert!(matches!(
            reg.get("nope"),
            Err(ServeError::UnknownGraph(n)) if n == "nope"
        ));
        reg.register("bad", || {
            Err(GraphError::Format("synthetic failure".into()))
        });
        match reg.get("bad") {
            Err(ServeError::GraphLoad { graph, error }) => {
                assert_eq!(graph, "bad");
                assert!(error.contains("synthetic failure"));
            }
            other => panic!("expected GraphLoad, got {other:?}"),
        }
        // A failed load leaves the entry retryable, not wedged.
        assert!(matches!(reg.get("bad"), Err(ServeError::GraphLoad { .. })));
        assert_eq!(reg.resident_bytes(), 0);
    }

    #[test]
    fn leader_backoff_respects_its_own_deadline() {
        // Regression: the retry loop used to sleep its full backoff
        // schedule regardless of the triggering caller's deadline, so a
        // 50 ms-deadline caller sat behind 700 ms of sleeps before its
        // error surfaced. Each sleep is now capped at the caller's
        // remaining budget.
        let reg = GraphRegistry::new(0);
        reg.set_load_backoff(Duration::from_millis(100), Duration::from_millis(400));
        reg.register("bad", || {
            Err(GraphError::Format("synthetic failure".into()))
        });
        let start = std::time::Instant::now();
        let deadline = start + Duration::from_millis(50);
        let out = reg.get_within("bad", Some(deadline));
        let elapsed = start.elapsed();
        // All attempts still run (loads stay retry-covered); the error is
        // the loader's, and it arrives near the deadline, not after the
        // 100+200+400 ms schedule.
        assert!(matches!(out, Err(ServeError::GraphLoad { .. })));
        assert!(
            elapsed < Duration::from_millis(300),
            "leader slept through its deadline: {elapsed:?}"
        );
        assert_eq!(reg.stats().load_attempts, LOAD_ATTEMPTS as u64);
    }

    #[test]
    fn leader_backoff_respects_a_waiters_deadline() {
        // A deadline-free leader hits a flaky loader while a second
        // caller waits behind the load with a 150 ms deadline: the
        // waiter's deadline must cap the leader's backoff sleeps (the
        // waiter already got its timeout error; the leader must settle
        // the slot promptly, not hold it for the full schedule).
        let fails = Arc::new(AtomicU64::new(0));
        let reg = Arc::new(GraphRegistry::new(0));
        reg.set_load_backoff(Duration::from_millis(100), Duration::from_millis(400));
        let g = graph(2);
        {
            let fails = Arc::clone(&fails);
            let g = Arc::clone(&g);
            reg.register("flaky", move || {
                if fails.fetch_add(1, Ordering::Relaxed) < (LOAD_ATTEMPTS - 1) as u64 {
                    Err(GraphError::Format("transient".into()))
                } else {
                    Ok(Arc::clone(&g))
                }
            });
        }
        let leader = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let start = std::time::Instant::now();
                let out = reg.get("flaky");
                (out.is_ok(), start.elapsed())
            })
        };
        // Give the leader time to claim the slot and enter its first
        // backoff sleep, then wait behind it with a short deadline.
        std::thread::sleep(Duration::from_millis(20));
        let waiter_deadline = std::time::Instant::now() + Duration::from_millis(150);
        let waited = reg.get_within("flaky", Some(waiter_deadline));
        // The waiter itself either timed out or caught the settled graph;
        // both are legal orderings.
        assert!(matches!(
            waited,
            Ok(_) | Err(ServeError::DeadlineExceeded { .. })
        ));
        let (leader_ok, leader_elapsed) = leader.join().unwrap();
        assert!(leader_ok, "flaky loader succeeds on its final attempt");
        // Unfixed schedule: 100+200+400 ms of sleeps (~700 ms). With the
        // waiter's cap the leader settles around the 150 ms mark.
        assert!(
            leader_elapsed < Duration::from_millis(400),
            "leader ignored the waiter's deadline: {leader_elapsed:?}"
        );
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let a = graph(1);
        let per = a.memory_bytes();
        // Budget fits two graphs of this size but not three.
        let reg = GraphRegistry::new(2 * per + per / 2);
        for (name, seed) in [("a", 1), ("b", 2), ("c", 3)] {
            reg.register_graph(name, graph(seed));
        }
        reg.get("a").unwrap();
        reg.get("b").unwrap();
        reg.get("a").unwrap(); // a now more recent than b
        let (_, evicted) = reg.get("c").unwrap();
        assert_eq!(evicted, vec!["b".to_string()]);
        let mut resident: Vec<String> = reg.resident().into_iter().map(|(n, _)| n).collect();
        resident.sort();
        assert_eq!(resident, ["a", "c"]);
        assert!(reg.resident_bytes() <= 2 * per + per / 2);
        assert_eq!(reg.stats().evictions, 1);
    }

    #[test]
    fn oversized_single_graph_still_serves() {
        let reg = GraphRegistry::new(1); // absurd budget
        reg.register_graph("big", graph(5));
        let (g, evicted) = reg.get("big").unwrap();
        assert!(g.num_nodes() > 0);
        assert!(evicted.is_empty());
        assert_eq!(reg.stats().resident_graphs, 1);
    }

    #[test]
    fn register_replaces_and_unaccounts() {
        let reg = GraphRegistry::new(0);
        reg.register_graph("x", graph(1));
        let (first, _) = reg.get("x").unwrap();
        let bytes = reg.resident_bytes();
        assert!(bytes > 0);
        reg.register_graph("x", graph(2));
        assert_eq!(reg.resident_bytes(), 0, "replacement evicts");
        let (second, _) = reg.get("x").unwrap();
        assert!(!Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn multi_engine_routes_and_counts_per_graph() {
        let me = MultiEngine::new(MultiEngineConfig {
            engine: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
            max_resident_bytes: 0,
            ..MultiEngineConfig::default()
        });
        me.registry().register_graph("g1", graph(7));
        me.registry().register_graph("g2", graph(8));
        let r1 = me.query("g1", QueryRequest::new(3)).unwrap();
        let r2 = me.query("g2", QueryRequest::new(3)).unwrap();
        // Same seed, different graphs: both are misses (fingerprint keys
        // keep them apart in the shared cache) and generally differ.
        assert_eq!(r1.outcome, CacheOutcome::Miss);
        assert_eq!(r2.outcome, CacheOutcome::Miss);
        let hit = me.query("g1", QueryRequest::new(3)).unwrap();
        assert_eq!(hit.outcome, CacheOutcome::Hit);
        assert!(hit.result.bitwise_eq(&r1.result));
        let stats = me.per_graph_stats();
        assert_eq!(stats.len(), 2);
        let g1 = &stats.iter().find(|(n, _)| n == "g1").unwrap().1;
        assert_eq!((g1.hits, g1.misses, g1.errors), (1, 1, 0));
        assert_eq!((g1.coalesced, g1.admission_rejections), (0, 0));
        assert!(matches!(
            me.query("absent", QueryRequest::new(0)),
            Err(ServeError::UnknownGraph(_))
        ));
        let absent = &me
            .per_graph_stats()
            .into_iter()
            .find(|(n, _)| n == "absent")
            .unwrap()
            .1;
        assert_eq!(absent.errors, 1);
    }

    #[test]
    fn loading_wait_is_bounded_by_the_deadline() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};
        let reg = Arc::new(GraphRegistry::new(0));
        let loading = Arc::new(AtomicBool::new(false));
        {
            let loading = Arc::clone(&loading);
            reg.register("slow", move || {
                loading.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(250));
                Ok(graph(61))
            });
        }
        let leader = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || reg.get("slow").map(|(g, _)| g))
        };
        // Wait until the leader is inside the loader (the entry is
        // marked Loading before the loader runs).
        while !loading.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        // A follower whose deadline lands mid-load must report
        // DeadlineExceeded at its deadline, not sleep out the load.
        let waited = Instant::now();
        let out = reg.get_within("slow", Some(Instant::now() + Duration::from_millis(40)));
        let elapsed = waited.elapsed();
        assert!(
            matches!(out, Err(ServeError::DeadlineExceeded { .. })),
            "expected DeadlineExceeded, got {out:?}"
        );
        assert!(
            elapsed < Duration::from_millis(200),
            "follower slept {elapsed:?} behind a 250ms load"
        );
        // The leader's load is unaffected, and the graph then serves.
        let g = leader.join().unwrap().unwrap();
        let (again, _) = reg.get("slow").unwrap();
        assert!(Arc::ptr_eq(&again, &g));
    }

    #[test]
    fn deadline_query_does_not_sleep_behind_a_slow_load() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};
        let me = Arc::new(MultiEngine::new(MultiEngineConfig {
            engine: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
            max_resident_bytes: 0,
            ..MultiEngineConfig::default()
        }));
        let loading = Arc::new(AtomicBool::new(false));
        {
            let loading = Arc::clone(&loading);
            me.registry().register("slow", move || {
                loading.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(250));
                Ok(graph(62))
            });
        }
        let leader = {
            let me = Arc::clone(&me);
            std::thread::spawn(move || me.query("slow", QueryRequest::new(1)))
        };
        while !loading.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let waited = Instant::now();
        let out = me.query(
            "slow",
            QueryRequest::new(2).deadline_in(Duration::from_millis(40)),
        );
        let elapsed = waited.elapsed();
        assert!(
            matches!(out, Err(ServeError::DeadlineExceeded { .. })),
            "expected DeadlineExceeded, got {out:?}"
        );
        assert!(
            elapsed < Duration::from_millis(200),
            "deadline query slept {elapsed:?} behind the load"
        );
        // The deadline-free leader completes normally once loaded.
        assert!(leader.join().unwrap().is_ok());
    }

    #[test]
    fn panicking_loader_does_not_wedge_the_entry() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let reg = GraphRegistry::new(0);
        let fail_once = Arc::new(AtomicBool::new(true));
        {
            let fail_once = Arc::clone(&fail_once);
            reg.register("flaky", move || {
                if fail_once.swap(false, Ordering::SeqCst) {
                    panic!("synthetic loader panic");
                }
                Ok(graph(21))
            });
        }
        // The panic propagates to the caller…
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.get("flaky")));
        assert!(unwound.is_err());
        // …but the entry is reset to Empty, so a retry loads normally and
        // other registry calls (register's wait-out loop) don't deadlock.
        let (g, _) = reg.get("flaky").unwrap();
        assert!(g.num_nodes() > 0);
        assert_eq!(reg.stats().loads, 1);
    }

    #[test]
    fn explicit_eviction_releases_the_front_and_its_pin() {
        let g1 = graph(31);
        let me = MultiEngine::new(MultiEngineConfig {
            engine: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
            max_resident_bytes: 0,
            ..MultiEngineConfig::default()
        });
        me.registry().register_graph("g1", Arc::clone(&g1));
        me.registry().register_graph("g2", graph(32));
        me.query("g1", QueryRequest::new(1)).unwrap();
        me.query("g2", QueryRequest::new(1)).unwrap();
        assert_eq!(me.fronts.lock().unwrap().len(), 2);
        // An *explicit* eviction (no front_for call involved) must still
        // release g1's front — the reconcile happens on the next routing
        // call for any graph.
        assert!(me.registry().evict("g1"));
        me.query("g2", QueryRequest::new(2)).unwrap();
        {
            let fronts = me.fronts.lock().unwrap();
            assert_eq!(fronts.len(), 1, "evicted graph's front released");
            assert!(!fronts.contains_key("g1"));
        }
        // And g1 still serves after a reload.
        let r = me.query("g1", QueryRequest::new(1)).unwrap();
        assert!(!r.result.cluster.is_empty());
        assert_eq!(me.fronts.lock().unwrap().len(), 2);
    }

    #[test]
    fn one_shared_pool_spans_all_graphs() {
        // Three hot graphs, two workers: the service runs exactly two
        // worker threads (plus the watchdog), not pools x graphs.
        let me = MultiEngine::new(MultiEngineConfig {
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            max_resident_bytes: 0,
            ..MultiEngineConfig::default()
        });
        for (name, seed) in [("a", 41), ("b", 42), ("c", 43)] {
            me.registry().register_graph(name, graph(seed));
        }
        for name in ["a", "b", "c"] {
            let r = me.query(name, QueryRequest::new(3)).unwrap();
            assert!(!r.result.cluster.is_empty());
        }
        let stats = me.stats();
        assert_eq!(stats.workers, 2, "one pool, host-sized");
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn admission_quota_rejections_are_per_graph() {
        use hk_cluster::Method;
        let me = MultiEngine::new(MultiEngineConfig {
            engine: EngineConfig {
                workers: 1,
                per_graph_queue: 1,
                max_queue: 16,
                cache_bytes: 0,
                ..EngineConfig::default()
            },
            max_resident_bytes: 0,
            ..MultiEngineConfig::default()
        });
        me.registry().register_graph("hog", graph(51));
        me.registry().register_graph("calm", graph(52));
        // Occupy the single worker with a slow query so later submits
        // stay queued.
        // delta = 1e-8 inflates the published Monte-Carlo walk count so
        // the cap binds and the query reliably outlives the submits.
        let slow = me
            .submit(
                "hog",
                QueryRequest::new(0)
                    .method(Method::MonteCarlo {
                        max_walks: Some(2_000_000),
                    })
                    .knobs(crate::Knobs {
                        delta: Some(1e-8),
                        ..Default::default()
                    }),
            )
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // One queued request fits hog's quota; the next is rejected —
        // while calm still admits.
        let queued = me.submit("hog", QueryRequest::new(1)).unwrap();
        let rejected = me.submit("hog", QueryRequest::new(2));
        assert!(matches!(rejected, Err(ServeError::Overloaded { .. })));
        let calm = me.submit("calm", QueryRequest::new(1)).unwrap();
        for t in [slow, queued, calm] {
            t.wait().unwrap();
        }
        let stats = me.per_graph_stats();
        let hog = &stats.iter().find(|(n, _)| n == "hog").unwrap().1;
        let calm = &stats.iter().find(|(n, _)| n == "calm").unwrap().1;
        assert_eq!(hog.admission_rejections, 1);
        assert_eq!(calm.admission_rejections, 0);
        assert_eq!(me.stats().shed_overload, 1);
    }

    #[test]
    fn cache_survives_evict_reload_cycle() {
        let g = graph(11);
        let per = g.memory_bytes();
        let me = MultiEngine::new(MultiEngineConfig {
            engine: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
            // Budget below two graphs: loading the second evicts the first.
            max_resident_bytes: per + per / 2,
            ..MultiEngineConfig::default()
        });
        me.registry().register_graph("a", Arc::clone(&g));
        me.registry().register_graph("b", graph(12));
        let cold = me.query("a", QueryRequest::new(5)).unwrap();
        assert_eq!(cold.outcome, CacheOutcome::Miss);
        // Force a's eviction by touching b.
        me.query("b", QueryRequest::new(5)).unwrap();
        assert_eq!(me.registry().stats().evictions, 1);
        // a reloads — and its cached result is still a *hit*, because the
        // reloaded graph fingerprints identically.
        let warm = me.query("a", QueryRequest::new(5)).unwrap();
        assert_eq!(warm.outcome, CacheOutcome::Hit);
        assert!(warm.result.bitwise_eq(&cold.result));
    }
}

//! Failure-injection tests for the graph loaders: hostile or corrupted
//! input must produce `Err`, never a panic or a structurally invalid
//! graph.

use hk_graph::builder::graph_from_edges;
use hk_graph::io;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes fed to the binary loader never panic.
    #[test]
    fn binary_loader_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = io::read_binary(&bytes[..]); // Err is fine, panic is not
    }

    /// Arbitrary bytes with a valid magic prefix still never panic, and
    /// any graph that does load satisfies the CSR invariants.
    #[test]
    fn binary_loader_survives_bad_body(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut buf = b"HKGRAPH1".to_vec();
        buf.extend_from_slice(&bytes);
        if let Ok(g) = io::read_binary(&buf[..]) {
            prop_assert!(g.num_nodes() < 1_000_000);
        }
    }

    /// Arbitrary text never panics the edge-list parser.
    #[test]
    fn text_loader_survives_garbage(s in "\\PC{0,300}") {
        let _ = io::read_edge_list(s.as_bytes());
    }

    /// Corrupting any single byte of a valid file is either detected or
    /// yields a graph (flipping a neighbor id can still be valid) — but
    /// never panics.
    #[test]
    fn single_byte_corruption(pos in 0usize..200, val in any::<u8>()) {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        if pos < buf.len() {
            buf[pos] = val;
        }
        let _ = io::read_binary(&buf[..]);
    }
}

#[test]
fn truncation_at_every_prefix_is_safe() {
    let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    for len in 0..buf.len() {
        assert!(
            io::read_binary(&buf[..len]).is_err(),
            "prefix {len} must fail"
        );
    }
    assert!(io::read_binary(&buf[..]).is_ok());
}

//! Failure-injection tests for the graph loaders: hostile or corrupted
//! input must produce `Err`, never a panic or a structurally invalid
//! graph.

use hk_graph::builder::graph_from_edges;
use hk_graph::error::GraphError;
use hk_graph::io;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes fed to the binary loader never panic.
    #[test]
    fn binary_loader_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = io::read_binary(&bytes[..]); // Err is fine, panic is not
    }

    /// Arbitrary bytes with a valid magic prefix still never panic, and
    /// any graph that does load satisfies the CSR invariants.
    #[test]
    fn binary_loader_survives_bad_body(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut buf = b"HKGRAPH1".to_vec();
        buf.extend_from_slice(&bytes);
        if let Ok(g) = io::read_binary(&buf[..]) {
            prop_assert!(g.num_nodes() < 1_000_000);
        }
    }

    /// Arbitrary text never panics the edge-list parser.
    #[test]
    fn text_loader_survives_garbage(s in "\\PC{0,300}") {
        let _ = io::read_edge_list(s.as_bytes());
    }

    /// Corrupting any single byte of a valid file is either detected or
    /// yields a graph (flipping a neighbor id can still be valid) — but
    /// never panics.
    #[test]
    fn single_byte_corruption(pos in 0usize..200, val in any::<u8>()) {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        if pos < buf.len() {
            buf[pos] = val;
        }
        let _ = io::read_binary(&buf[..]);
    }
}

/// Build a valid binary image of a small fixed graph.
fn valid_image() -> Vec<u8> {
    let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    buf
}

/// Assemble a binary header (magic + n + arcs) followed by `body`.
fn image_with_header(n: u64, arcs: u64, body: &[u8]) -> Vec<u8> {
    let mut buf = b"HKGRAPH1".to_vec();
    buf.extend_from_slice(&n.to_le_bytes());
    buf.extend_from_slice(&arcs.to_le_bytes());
    buf.extend_from_slice(body);
    buf
}

/// Every header-level corruption maps to a *typed* error — `Io` for
/// truncation (EOF mid-field), `Format` for internally inconsistent
/// headers — never a panic and never a bogus graph.
#[test]
fn corrupted_headers_yield_typed_errors() {
    // Truncated inside the magic / the node count / the arc count.
    for len in [0, 4, 8, 12, 16, 20] {
        let img = &valid_image()[..len];
        assert!(
            matches!(
                io::read_binary(img),
                Err(GraphError::Io(_)) | Err(GraphError::Format(_))
            ),
            "prefix {len} must be a typed header error"
        );
    }
    // Node count exceeding the u32 id space.
    let img = image_with_header(u32::MAX as u64 + 1, 0, &[]);
    assert!(matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("u32")));
    // Odd arc count (an undirected graph stores each edge twice).
    let img = image_with_header(2, 3, &[0u8; 64]);
    assert!(matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("odd")));
    // An offset table claiming a single degree beyond u32 (a huge total
    // arc count alone stays legal — only per-node degrees are bounded).
    let degree = u32::MAX as u64 + 3; // even, > u32::MAX
    let mut body = Vec::new();
    for off in [0u64, degree] {
        body.extend_from_slice(&off.to_le_bytes());
    }
    let img = image_with_header(1, degree, &body);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("degree"))
    );
    // Huge-but-plausible header over an empty body: EOF, not an OOM abort.
    let img = image_with_header(1 << 30, 1 << 31, &[]);
    assert!(matches!(io::read_binary(&img[..]), Err(GraphError::Io(_))));
}

/// Offset-table corruption inside an otherwise valid file is detected.
#[test]
fn corrupted_offset_tables_yield_typed_errors() {
    // offsets[0] != 0.
    let mut body = Vec::new();
    for off in [1u64, 2, 2] {
        body.extend_from_slice(&off.to_le_bytes());
    }
    body.extend_from_slice(&[0u8; 8]);
    let img = image_with_header(2, 2, &body);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("offsets"))
    );
    // Non-monotone offsets.
    let mut body = Vec::new();
    for off in [0u64, 2, 1, 2] {
        body.extend_from_slice(&off.to_le_bytes());
    }
    body.extend_from_slice(&[0u8; 8]);
    let img = image_with_header(3, 2, &body);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("monotone"))
    );
    // Final offset disagreeing with the header's arc count.
    let mut body = Vec::new();
    for off in [0u64, 1, 1] {
        body.extend_from_slice(&off.to_le_bytes());
    }
    body.extend_from_slice(&[0u8; 8]);
    let img = image_with_header(2, 2, &body);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("offsets"))
    );
}

/// A neighbor id pointing past `n` is reported as `NodeOutOfRange` with
/// the offending id, not clamped or accepted.
#[test]
fn out_of_range_neighbor_is_typed() {
    let mut buf = valid_image();
    let last = buf.len() - 4;
    buf[last..].copy_from_slice(&1234u32.to_le_bytes());
    match io::read_binary(&buf[..]) {
        Err(GraphError::NodeOutOfRange { node, num_nodes }) => {
            assert_eq!(node, 1234);
            assert_eq!(num_nodes, 5);
        }
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
}

/// Truncating anywhere inside the neighbor section is an `Io` error (EOF),
/// never a short graph.
#[test]
fn truncated_neighbor_sections_are_io_errors() {
    let buf = valid_image();
    let neighbors_start = 8 + 16 + 6 * 8; // magic + header + offsets
    for len in neighbors_start..buf.len() {
        assert!(
            matches!(io::read_binary(&buf[..len]), Err(GraphError::Io(_))),
            "truncation at {len} must be an Io error"
        );
    }
}

#[test]
fn truncation_at_every_prefix_is_safe() {
    let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    for len in 0..buf.len() {
        assert!(
            io::read_binary(&buf[..len]).is_err(),
            "prefix {len} must fail"
        );
    }
    assert!(io::read_binary(&buf[..]).is_ok());
}

// ---------------------------------------------------------------------------
// v2 snapshot format (HKGRAPH2): header, section table, checksums
// ---------------------------------------------------------------------------

/// A valid v2 image of a small fixed graph.
fn valid_v2_image() -> Vec<u8> {
    let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
    let mut buf = Vec::new();
    io::write_binary_v2(&g, &mut buf).unwrap();
    buf
}

/// FNV-1a (the v2 checksum) — reimplemented here so tests can *repair*
/// the table checksum after deliberately tampering with table fields,
/// isolating the specific validation under test from the checksum that
/// would otherwise fire first.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const V2_TABLE_START: usize = 0x40;
const V2_TABLE_LEN: usize = 3 * 32;

/// Recompute and patch the header's section-table checksum.
fn fix_table_checksum(buf: &mut [u8]) {
    let sum = fnv1a(&buf[V2_TABLE_START..V2_TABLE_START + V2_TABLE_LEN]);
    buf[0x28..0x30].copy_from_slice(&sum.to_le_bytes());
}

/// Byte offset of field `field` (0 = kind, 1 = elem_size, 2 = byte_off,
/// 3 = elem_count, 4 = checksum) in section-table entry `i`.
fn entry_field(i: usize, field: usize) -> usize {
    V2_TABLE_START + i * 32 + [0, 4, 8, 16, 24][field]
}

#[test]
fn v2_truncation_at_every_prefix_is_typed() {
    let buf = valid_v2_image();
    for len in 0..buf.len() {
        match io::read_binary(&buf[..len]) {
            Err(
                GraphError::Format(_) | GraphError::Io(_) | GraphError::ChecksumMismatch { .. },
            ) => {}
            Err(other) => panic!("prefix {len}: unexpected error class {other:?}"),
            Ok(_) => panic!("prefix {len} must fail"),
        }
    }
    assert!(io::read_binary(&buf[..]).is_ok());
}

#[test]
fn v2_header_corruptions_are_typed() {
    let buf = valid_v2_image();
    // Bad version.
    let mut img = buf.clone();
    img[0x08..0x0c].copy_from_slice(&7u32.to_le_bytes());
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("version"))
    );
    // Unknown flags.
    let mut img = buf.clone();
    img[0x0c] = 1;
    assert!(matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("flags")));
    // Node count exceeding u32 ids.
    let mut img = buf.clone();
    img[0x10..0x18].copy_from_slice(&(u32::MAX as u64 + 1).to_le_bytes());
    assert!(matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("u32")));
    // Odd arc count.
    let mut img = buf.clone();
    img[0x18..0x20].copy_from_slice(&13u64.to_le_bytes());
    assert!(matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("odd")));
    // Wrong section count.
    let mut img = buf.clone();
    img[0x20..0x24].copy_from_slice(&4u32.to_le_bytes());
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("section"))
    );
}

#[test]
fn v2_table_checksum_guards_the_table() {
    // Any tamper with a table field without repairing the checksum is a
    // ChecksumMismatch naming the table.
    let mut img = valid_v2_image();
    img[entry_field(1, 2)] ^= 0xff;
    match io::read_binary(&img[..]) {
        Err(GraphError::ChecksumMismatch { section, .. }) => {
            assert_eq!(section, "section table");
        }
        other => panic!("expected table checksum mismatch, got {other:?}"),
    }
}

#[test]
fn v2_misaligned_section_offset_is_typed() {
    let mut img = valid_v2_image();
    // Nudge the neighbors section offset off the 64-byte grid.
    let at = entry_field(1, 2);
    let off = u64::from_le_bytes(img[at..at + 8].try_into().unwrap());
    img[at..at + 8].copy_from_slice(&(off + 4).to_le_bytes());
    fix_table_checksum(&mut img);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("aligned")),
    );
}

#[test]
fn v2_overlapping_sections_are_typed() {
    let mut img = valid_v2_image();
    // Point the neighbors section back at the offsets section.
    let at_off = entry_field(0, 2);
    let offsets_pos = u64::from_le_bytes(img[at_off..at_off + 8].try_into().unwrap());
    let at = entry_field(1, 2);
    img[at..at + 8].copy_from_slice(&offsets_pos.to_le_bytes());
    fix_table_checksum(&mut img);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("overlap")),
    );
}

#[test]
fn v2_out_of_bounds_section_is_typed_not_oob() {
    let mut img = valid_v2_image();
    // Degrees section claimed far past EOF: must be a typed error, not a
    // read past the buffer.
    let at = entry_field(2, 2);
    img[at..at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
    fix_table_checksum(&mut img);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("truncated")),
    );
}

#[test]
fn v2_section_checksums_catch_payload_corruption() {
    let img = valid_v2_image();
    for (i, name) in [(0, "offsets"), (1, "neighbors"), (2, "degrees")] {
        let at = entry_field(i, 2);
        let pos = u64::from_le_bytes(img[at..at + 8].try_into().unwrap()) as usize;
        let mut bad = img.clone();
        bad[pos] ^= 0x01;
        match io::read_binary(&bad[..]) {
            Err(GraphError::ChecksumMismatch { section, .. }) => {
                assert_eq!(section, name, "corrupted section {i}")
            }
            // A flipped payload byte can also trip a structural check
            // first (e.g. offsets[0] != 0) depending on evaluation
            // order; what is forbidden is acceptance or a panic.
            Err(GraphError::Format(_)) => {}
            other => panic!("section {name}: expected typed error, got {other:?}"),
        }
    }
}

#[test]
fn v2_degree_section_must_agree_with_offsets() {
    // Rewrite a degree entry *and* repair its section checksum: the
    // cross-array consistency check must still catch it.
    let mut img = valid_v2_image();
    let at = entry_field(2, 2);
    let pos = u64::from_le_bytes(img[at..at + 8].try_into().unwrap()) as usize;
    let at_count = entry_field(2, 3);
    let count = u64::from_le_bytes(img[at_count..at_count + 8].try_into().unwrap()) as usize;
    img[pos..pos + 4].copy_from_slice(&99u32.to_le_bytes());
    let sum = fnv1a(&img[pos..pos + count * 4]);
    let at_sum = entry_field(2, 4);
    img[at_sum..at_sum + 8].copy_from_slice(&sum.to_le_bytes());
    fix_table_checksum(&mut img);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("degree")),
    );
}

#[test]
fn v2_trailing_garbage_is_rejected() {
    let mut img = valid_v2_image();
    img.extend_from_slice(&[0u8; 64]);
    assert!(matches!(
        io::read_binary(&img[..]),
        Err(GraphError::Format(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes behind a v2 magic never panic the loader and never
    /// produce a structurally invalid graph.
    #[test]
    fn v2_loader_survives_bad_body(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut buf = b"HKGRAPH2".to_vec();
        buf.extend_from_slice(&bytes);
        if let Ok(g) = io::read_binary(&buf[..]) {
            prop_assert!(g.check_invariants().is_ok());
        }
    }

    /// Flipping any single byte of a valid v2 image either fails with a
    /// typed error or — when the flip lands in dead padding — loads a
    /// graph identical to the original. Silent structural corruption is
    /// impossible (that is what the checksums buy over v1).
    #[test]
    fn v2_single_byte_corruption_is_detected_or_harmless(pos in 0usize..832, val in any::<u8>()) {
        let img = valid_v2_image();
        prop_assume!(pos < img.len());
        prop_assume!(img[pos] != val);
        let original = io::read_binary(&img[..]).unwrap();
        let mut bad = img;
        bad[pos] = val;
        match io::read_binary(&bad[..]) {
            Err(_) => {}
            Ok(g) => prop_assert_eq!(g, original, "undetected corruption at byte {}", pos),
        }
    }
}

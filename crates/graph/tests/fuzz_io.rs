//! Failure-injection tests for the graph loaders: hostile or corrupted
//! input must produce `Err`, never a panic or a structurally invalid
//! graph.

use hk_graph::builder::graph_from_edges;
use hk_graph::error::GraphError;
use hk_graph::io;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes fed to the binary loader never panic.
    #[test]
    fn binary_loader_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = io::read_binary(&bytes[..]); // Err is fine, panic is not
    }

    /// Arbitrary bytes with a valid magic prefix still never panic, and
    /// any graph that does load satisfies the CSR invariants.
    #[test]
    fn binary_loader_survives_bad_body(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut buf = b"HKGRAPH1".to_vec();
        buf.extend_from_slice(&bytes);
        if let Ok(g) = io::read_binary(&buf[..]) {
            prop_assert!(g.num_nodes() < 1_000_000);
        }
    }

    /// Arbitrary text never panics the edge-list parser.
    #[test]
    fn text_loader_survives_garbage(s in "\\PC{0,300}") {
        let _ = io::read_edge_list(s.as_bytes());
    }

    /// Corrupting any single byte of a valid file is either detected or
    /// yields a graph (flipping a neighbor id can still be valid) — but
    /// never panics.
    #[test]
    fn single_byte_corruption(pos in 0usize..200, val in any::<u8>()) {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        if pos < buf.len() {
            buf[pos] = val;
        }
        let _ = io::read_binary(&buf[..]);
    }
}

/// Build a valid binary image of a small fixed graph.
fn valid_image() -> Vec<u8> {
    let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    buf
}

/// Assemble a binary header (magic + n + arcs) followed by `body`.
fn image_with_header(n: u64, arcs: u64, body: &[u8]) -> Vec<u8> {
    let mut buf = b"HKGRAPH1".to_vec();
    buf.extend_from_slice(&n.to_le_bytes());
    buf.extend_from_slice(&arcs.to_le_bytes());
    buf.extend_from_slice(body);
    buf
}

/// Every header-level corruption maps to a *typed* error — `Io` for
/// truncation (EOF mid-field), `Format` for internally inconsistent
/// headers — never a panic and never a bogus graph.
#[test]
fn corrupted_headers_yield_typed_errors() {
    // Truncated inside the magic / the node count / the arc count.
    for len in [0, 4, 8, 12, 16, 20] {
        let img = &valid_image()[..len];
        assert!(
            matches!(
                io::read_binary(img),
                Err(GraphError::Io(_)) | Err(GraphError::Format(_))
            ),
            "prefix {len} must be a typed header error"
        );
    }
    // Node count exceeding the u32 id space.
    let img = image_with_header(u32::MAX as u64 + 1, 0, &[]);
    assert!(matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("u32")));
    // Odd arc count (an undirected graph stores each edge twice).
    let img = image_with_header(2, 3, &[0u8; 64]);
    assert!(matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("odd")));
    // An offset table claiming a single degree beyond u32 (a huge total
    // arc count alone stays legal — only per-node degrees are bounded).
    let degree = u32::MAX as u64 + 3; // even, > u32::MAX
    let mut body = Vec::new();
    for off in [0u64, degree] {
        body.extend_from_slice(&off.to_le_bytes());
    }
    let img = image_with_header(1, degree, &body);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("degree"))
    );
    // Huge-but-plausible header over an empty body: EOF, not an OOM abort.
    let img = image_with_header(1 << 30, 1 << 31, &[]);
    assert!(matches!(io::read_binary(&img[..]), Err(GraphError::Io(_))));
}

/// Offset-table corruption inside an otherwise valid file is detected.
#[test]
fn corrupted_offset_tables_yield_typed_errors() {
    // offsets[0] != 0.
    let mut body = Vec::new();
    for off in [1u64, 2, 2] {
        body.extend_from_slice(&off.to_le_bytes());
    }
    body.extend_from_slice(&[0u8; 8]);
    let img = image_with_header(2, 2, &body);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("offsets"))
    );
    // Non-monotone offsets.
    let mut body = Vec::new();
    for off in [0u64, 2, 1, 2] {
        body.extend_from_slice(&off.to_le_bytes());
    }
    body.extend_from_slice(&[0u8; 8]);
    let img = image_with_header(3, 2, &body);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("monotone"))
    );
    // Final offset disagreeing with the header's arc count.
    let mut body = Vec::new();
    for off in [0u64, 1, 1] {
        body.extend_from_slice(&off.to_le_bytes());
    }
    body.extend_from_slice(&[0u8; 8]);
    let img = image_with_header(2, 2, &body);
    assert!(
        matches!(io::read_binary(&img[..]), Err(GraphError::Format(m)) if m.contains("offsets"))
    );
}

/// A neighbor id pointing past `n` is reported as `NodeOutOfRange` with
/// the offending id, not clamped or accepted.
#[test]
fn out_of_range_neighbor_is_typed() {
    let mut buf = valid_image();
    let last = buf.len() - 4;
    buf[last..].copy_from_slice(&1234u32.to_le_bytes());
    match io::read_binary(&buf[..]) {
        Err(GraphError::NodeOutOfRange { node, num_nodes }) => {
            assert_eq!(node, 1234);
            assert_eq!(num_nodes, 5);
        }
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
}

/// Truncating anywhere inside the neighbor section is an `Io` error (EOF),
/// never a short graph.
#[test]
fn truncated_neighbor_sections_are_io_errors() {
    let buf = valid_image();
    let neighbors_start = 8 + 16 + 6 * 8; // magic + header + offsets
    for len in neighbors_start..buf.len() {
        assert!(
            matches!(io::read_binary(&buf[..len]), Err(GraphError::Io(_))),
            "truncation at {len} must be an Io error"
        );
    }
}

#[test]
fn truncation_at_every_prefix_is_safe() {
    let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    for len in 0..buf.len() {
        assert!(
            io::read_binary(&buf[..len]).is_err(),
            "prefix {len} must fail"
        );
    }
    assert!(io::read_binary(&buf[..]).is_ok());
}

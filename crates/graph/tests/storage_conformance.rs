//! Differential storage-backend conformance: every load path — v1 into
//! the owned backend, v2 into a heap arena, v2 through an mmap (when the
//! `mmap` feature is on) — must yield a **bitwise-equal CSR** and an
//! **identical fingerprint**, for every committed `data/*.hkg` snapshot
//! and for arbitrary generated graphs.
//!
//! `Graph::PartialEq` compares the offset and neighbor arrays
//! element-for-element (backend-blind by design), so `assert_eq!` across
//! backends *is* the bitwise claim; fingerprints are compared on top
//! because the serving cache keys on them — a backend that perturbed the
//! fingerprint would silently split the cache.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hk_graph::builder::graph_from_edges;
use hk_graph::storage::{Arena, StorageBackend};
use hk_graph::{io, Graph};
use proptest::prelude::*;

fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data")
}

/// Every `.hkg` snapshot present in `data/` (the two committed golden
/// datasets always; more when the bench harness has generated them).
fn committed_snapshots() -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(data_dir())
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "hkg"))
                .collect()
        })
        .unwrap_or_default();
    v.sort();
    v
}

/// All v2 load paths for a snapshot file, labeled.
fn v2_loads(path: &Path) -> Vec<(&'static str, Graph, StorageBackend)> {
    #[cfg_attr(
        not(all(feature = "mmap", unix, target_pointer_width = "64")),
        allow(unused_mut)
    )]
    let mut loads = vec![
        (
            "load_binary_v2 (heap arena)",
            io::load_binary_v2(path).unwrap(),
            StorageBackend::Arena,
        ),
        (
            "load_binary auto-detect",
            io::load_binary(path).unwrap(),
            StorageBackend::Arena,
        ),
        (
            "read_binary from stream",
            io::read_binary(std::fs::File::open(path).unwrap()).unwrap(),
            StorageBackend::Arena,
        ),
    ];
    #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
    loads.push((
        "load_binary_mmap",
        io::load_binary_mmap(path).unwrap(),
        StorageBackend::Mmap,
    ));
    loads
}

#[test]
fn every_load_path_is_bitwise_identical_on_committed_snapshots() {
    let snapshots = committed_snapshots();
    assert!(
        snapshots.len() >= 2,
        "expected at least the two committed golden datasets in data/"
    );
    let tmp = std::env::temp_dir().join("hk_storage_conformance");
    std::fs::create_dir_all(&tmp).unwrap();
    for path in &snapshots {
        // Committed snapshots are v1 today; load_binary handles either.
        let reference =
            io::load_binary(path).unwrap_or_else(|e| panic!("load {}: {e}", path.display()));
        assert_eq!(reference.backend(), StorageBackend::Owned);
        let fp = reference.fingerprint();

        // Convert to v2 (the `save_binary_v2` migration path)…
        let v2_path = tmp.join(path.file_name().unwrap());
        io::save_binary_v2(&reference, &v2_path).unwrap();

        // …and require every v2 load path to agree bit for bit.
        for (label, loaded, want_backend) in v2_loads(&v2_path) {
            assert_eq!(loaded.backend(), want_backend, "{label}");
            assert_eq!(
                loaded,
                reference,
                "{label}: CSR mismatch for {}",
                path.display()
            );
            assert_eq!(
                loaded.fingerprint(),
                fp,
                "{label}: fingerprint drift for {}",
                path.display()
            );
            assert_eq!(loaded.num_nodes(), reference.num_nodes(), "{label}");
            assert_eq!(loaded.num_edges(), reference.num_edges(), "{label}");
            // Spot-check the accessors the hot paths use, on a stride.
            let stride = (loaded.num_nodes() / 97).max(1);
            for v in (0..loaded.num_nodes()).step_by(stride) {
                let v = v as u32;
                assert_eq!(loaded.degree(v), reference.degree(v), "{label}");
                assert_eq!(loaded.neighbors(v), reference.neighbors(v), "{label}");
                assert_eq!(loaded.neighbor_row(v), reference.neighbor_row(v), "{label}");
            }
            // Detaching from the arena must also be lossless.
            let owned = loaded.to_owned_backend();
            assert_eq!(owned.backend(), StorageBackend::Owned);
            assert_eq!(owned, reference, "{label} -> owned");
            assert_eq!(owned.fingerprint(), fp, "{label} -> owned");
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn arena_graph_outlives_cheap_clones() {
    // Clone of an arena-backed graph shares the buffer; dropping the
    // original must keep the clone (and its unchecked accessors) valid.
    let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
    let mut buf = Vec::new();
    io::write_binary_v2(&g, &mut buf).unwrap();
    let arena_graph = io::read_binary_v2_from_arena(Arc::new(Arena::from_bytes(&buf))).unwrap();
    let clone = arena_graph.clone();
    assert_eq!(clone.backend(), arena_graph.backend());
    drop(arena_graph);
    assert_eq!(clone, g);
    assert!(clone.check_invariants().is_ok());
    for v in clone.nodes() {
        let (start, deg) = clone.neighbor_row(v);
        for i in 0..deg as usize {
            let u = unsafe { clone.neighbor_flat_unchecked(start + i) };
            assert_eq!(u, clone.neighbor_at(v, i));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// v1 and v2 images of an arbitrary graph load to bitwise-equal CSRs
    /// with equal fingerprints across all backends.
    #[test]
    fn backends_agree_on_arbitrary_graphs(
        edges in prop::collection::vec((0u32..80, 0u32..80), 0..300),
        isolated_tail in 0usize..5,
    ) {
        let mut b = hk_graph::GraphBuilder::new();
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let max_node = edges.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0);
        b.ensure_nodes(max_node + isolated_tail);
        let g = b.build();

        let mut v1 = Vec::new();
        io::write_binary(&g, &mut v1).unwrap();
        let mut v2 = Vec::new();
        io::write_binary_v2(&g, &mut v2).unwrap();

        let from_v1 = io::read_binary(&v1[..]).unwrap();
        let from_v2 = io::read_binary_v2_from_arena(Arc::new(Arena::from_bytes(&v2))).unwrap();
        prop_assert_eq!(from_v1.backend(), StorageBackend::Owned);
        prop_assert_eq!(from_v2.backend(), StorageBackend::Arena);
        prop_assert_eq!(&from_v1, &g);
        prop_assert_eq!(&from_v2, &g);
        prop_assert_eq!(from_v1.fingerprint(), g.fingerprint());
        prop_assert_eq!(from_v2.fingerprint(), g.fingerprint());
        prop_assert!(from_v2.check_invariants().is_ok());
        // memory accounting: arena counts the buffer, owned the arrays —
        // both positive for non-empty graphs, and the arena never smaller
        // than its sections.
        if g.num_nodes() > 0 {
            prop_assert!(from_v2.memory_bytes() >= (g.num_nodes() + 1) * 8);
        }
    }
}

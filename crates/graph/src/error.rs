//! Error type shared by graph construction and I/O.

use std::fmt;

/// Errors produced while building, loading or storing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A text edge list contained a token that is not a node id.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of what went wrong.
        msg: String,
    },
    /// A binary graph file had a bad magic number or inconsistent sizes.
    Format(String),
    /// An operation referenced a node id `>= num_nodes`.
    NodeOutOfRange {
        /// The offending id.
        node: u64,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A generator was asked for an impossible configuration
    /// (e.g. more edges than the complete graph holds).
    InvalidParameter(String),
    /// A v2 snapshot section failed its FNV-1a integrity checksum —
    /// the file was corrupted or partially written.
    ChecksumMismatch {
        /// Which part failed ("section table", "offsets", "neighbors",
        /// "degrees").
        section: &'static str,
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            GraphError::Format(msg) => write!(f, "bad graph file: {msg}"),
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range (graph has {num_nodes} nodes)"
                )
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "checksum mismatch in {section}: file records {expected:#018x}, \
                     bytes hash to {actual:#018x} (corrupted file)"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GraphError::Parse {
            line: 3,
            msg: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = GraphError::InvalidParameter("p must be in [0,1]".into());
        assert!(e.to_string().contains("p must be"));
        let e = GraphError::ChecksumMismatch {
            section: "neighbors",
            expected: 0xabc,
            actual: 0xdef,
        };
        assert!(e.to_string().contains("neighbors"));
        assert!(e.to_string().contains("0x0000000000000abc"));
    }

    #[test]
    fn io_error_source_preserved() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = GraphError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("nope"));
    }
}

//! Connected components and induced subgraphs.
//!
//! The experiment harness draws seed nodes from the largest connected
//! component (an isolated seed has a trivial HKPR vector), and the Figure 7
//! density study extracts induced subgraphs.

use std::collections::VecDeque;

use crate::csr::{Graph, NodeId};

/// Label every node with a component id in `[0, num_components)`.
/// Components are numbered in order of discovery (BFS from node 0 upward).
pub fn connected_components(graph: &Graph) -> Vec<u32> {
    const UNVISITED: u32 = u32::MAX;
    let n = graph.num_nodes();
    let mut label = vec![UNVISITED; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if label[start as usize] != UNVISITED {
            continue;
        }
        label[start as usize] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if label[u as usize] == UNVISITED {
                    label[u as usize] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn num_components(graph: &Graph) -> usize {
    connected_components(graph)
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1)
}

/// Nodes of the largest connected component, ascending. Ties break toward
/// the component discovered first.
pub fn largest_component(graph: &Graph) -> Vec<NodeId> {
    let labels = connected_components(graph);
    if labels.is_empty() {
        return Vec::new();
    }
    let k = *labels.iter().max().unwrap() as usize + 1;
    let mut counts = vec![0usize; k];
    for &l in &labels {
        counts[l as usize] += 1;
    }
    let best = counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
        .map(|(i, _)| i as u32)
        .unwrap();
    labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == best)
        .map(|(v, _)| v as NodeId)
        .collect()
}

/// Induced subgraph on `nodes` (must be sorted, deduplicated).
///
/// Returns the subgraph (nodes renumbered `0..nodes.len()`) and the mapping
/// from new id to original id (`nodes` itself, cloned for ownership).
pub fn induced_subgraph(graph: &Graph, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    debug_assert!(
        nodes.windows(2).all(|w| w[0] < w[1]),
        "nodes must be sorted unique"
    );
    let mut b = crate::GraphBuilder::new();
    b.ensure_nodes(nodes.len());
    let rank = |v: NodeId| nodes.binary_search(&v).ok();
    for (new_u, &u) in nodes.iter().enumerate() {
        for &v in graph.neighbors(u) {
            if v > u {
                if let Some(new_v) = rank(v) {
                    b.add_edge(new_u as NodeId, new_v as NodeId);
                }
            }
        }
    }
    (b.build(), nodes.to_vec())
}

/// Breadth-first ball: BFS from `start`, collecting nodes in visit order
/// until `max_size` nodes are gathered (or the component is exhausted).
/// Output is sorted ascending. Used to carve the density-ranked subgraphs
/// of the Figure 7 experiment.
pub fn bfs_ball(graph: &Graph, start: NodeId, max_size: usize) -> Vec<NodeId> {
    let mut visited = std::collections::HashSet::with_capacity(max_size * 2);
    let mut order = Vec::with_capacity(max_size);
    let mut queue = VecDeque::new();
    visited.insert(start);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        if order.len() >= max_size {
            break;
        }
        for &u in graph.neighbors(v) {
            if visited.len() >= max_size && !visited.contains(&u) {
                continue;
            }
            if visited.insert(u) {
                queue.push_back(u);
            }
        }
    }
    order.sort_unstable();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn two_triangles() -> Graph {
        graph_from_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn labels_two_components() {
        let g = two_triangles();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(num_components(&g), 2);
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let mut b = crate::GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_nodes(4);
        let g = b.build();
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn largest_component_picks_bigger() {
        let g = graph_from_edges([(0, 1), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let lc = largest_component(&g);
        assert_eq!(lc, vec![2, 3, 4, 5]);
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let g = Graph::empty(0);
        assert!(largest_component(&g).is_empty());
        assert_eq!(num_components(&g), 0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = two_triangles();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 3, 4]);
        assert_eq!(sub.num_nodes(), 4);
        // Internal edges: (0,1) and (3,4) -> renumbered (0,1), (2,3).
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(2, 3));
        assert_eq!(map, vec![0, 1, 3, 4]);
    }

    #[test]
    fn bfs_ball_respects_size_cap() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 4), (2, 5), (3, 6)]);
        let ball = bfs_ball(&g, 0, 4);
        assert_eq!(ball.len(), 4);
        assert!(ball.contains(&0));
        let full = bfs_ball(&g, 0, 100);
        assert_eq!(full.len(), 7);
        assert!(full.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bfs_ball_stays_in_component() {
        let g = two_triangles();
        let ball = bfs_ball(&g, 3, 100);
        assert_eq!(ball, vec![3, 4, 5]);
    }
}

//! Chung–Lu random graphs with a prescribed expected-degree sequence.
//!
//! Used to build stand-ins whose *average degree* matches a target SNAP
//! dataset while keeping a heavy-tailed degree profile. The implementation
//! is the Miller–Hagberg O(n + m) skip-sampling variant.

use rand::{Rng, RngExt};

use super::geometric_skip;
use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// Power-law weight sequence `w_i ∝ (i + i0)^(-1/(gamma-1))`, rescaled so
/// the mean equals `avg_degree` and capped at `sqrt(sum w)` (the standard
/// cap that keeps edge probabilities `w_i w_j / S` below 1).
pub fn powerlaw_weights(n: usize, gamma: f64, avg_degree: f64) -> Vec<f64> {
    assert!(gamma > 2.0, "gamma must exceed 2 for a finite mean");
    assert!(avg_degree > 0.0);
    let alpha = 1.0 / (gamma - 1.0);
    // i0 shifts the head so the maximum weight stays moderate at small n.
    let i0 = 1.0;
    let mut w: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();
    let mean: f64 = w.iter().sum::<f64>() / n as f64;
    let scale = avg_degree / mean;
    for x in &mut w {
        *x *= scale;
    }
    let s: f64 = w.iter().sum();
    let cap = s.sqrt();
    for x in &mut w {
        if *x > cap {
            *x = cap;
        }
    }
    w
}

/// Chung–Lu model: edge `{i, j}` appears independently with probability
/// `min(1, w_i * w_j / S)` where `S = sum w`. Expected degree of node `i`
/// is approximately `w_i`. Weights are sorted internally (descending);
/// the output node `i` corresponds to the `i`-th *largest* weight.
pub fn chung_lu<R: Rng>(weights: &[f64], rng: &mut R) -> Result<Graph, GraphError> {
    let n = weights.len();
    if n > u32::MAX as usize {
        return Err(GraphError::InvalidParameter(format!(
            "n={n} exceeds u32 node ids"
        )));
    }
    if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
        return Err(GraphError::InvalidParameter(
            "weights must be finite and >= 0".into(),
        ));
    }
    let mut w = weights.to_vec();
    // Descending order lets the inner loop's acceptance ratio only decrease.
    w.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
    let s: f64 = w.iter().sum();
    let mut b = GraphBuilder::new();
    b.ensure_nodes(n);
    if s <= 0.0 || n < 2 {
        return Ok(b.build());
    }

    for i in 0..n - 1 {
        if w[i] <= 0.0 {
            break;
        }
        // Upper-bound probability for row i (weights descending).
        let mut p = (w[i] * w[i + 1] / s).min(1.0);
        if p <= 0.0 {
            continue;
        }
        let mut j = i + 1 + geometric_skip(rng, p);
        while j < n {
            let q = (w[i] * w[j] / s).min(1.0);
            // Thinning: accept with probability q / p.
            if q > 0.0 && rng.random::<f64>() < q / p {
                b.add_edge(i as NodeId, j as NodeId);
            }
            p = q;
            if p <= 0.0 {
                break;
            }
            j += 1 + geometric_skip(rng, p);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn expected_degree_tracks_weights() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 3000;
        let w = vec![8.0; n];
        let g = chung_lu(&w, &mut rng).unwrap();
        let avg = g.avg_degree();
        assert!((avg - 8.0).abs() < 0.5, "avg degree {avg} should be near 8");
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn powerlaw_weights_mean_matches() {
        let w = powerlaw_weights(10_000, 2.5, 6.6);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        // Cap can shave a little mass off the head.
        assert!((mean - 6.6).abs() < 0.7, "mean {mean}");
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn powerlaw_graph_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let w = powerlaw_weights(5000, 2.3, 8.0);
        let g = chung_lu(&w, &mut rng).unwrap();
        assert!(g.max_degree() as f64 > 5.0 * g.avg_degree());
    }

    #[test]
    fn zero_weights_and_small_n() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = chung_lu(&[0.0, 0.0, 0.0], &mut rng).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 3);
        let g = chung_lu(&[], &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 0);
        let g = chung_lu(&[5.0], &mut rng).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn rejects_bad_weights() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(chung_lu(&[1.0, f64::NAN], &mut rng).is_err());
        assert!(chung_lu(&[1.0, -2.0], &mut rng).is_err());
    }
}

//! Zachary's karate club — the canonical 34-node community-detection
//! benchmark, included as a deterministic fixture for examples, tests and
//! documentation.

use crate::builder::graph_from_edges;
use crate::csr::Graph;

/// The 78 undirected edges of Zachary's karate-club network (0-indexed,
/// node 0 = the instructor "Mr. Hi", node 33 = the administrator "John A").
const EDGES: [(u32, u32); 78] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (0, 7),
    (0, 8),
    (0, 10),
    (0, 11),
    (0, 12),
    (0, 13),
    (0, 17),
    (0, 19),
    (0, 21),
    (0, 31),
    (1, 2),
    (1, 3),
    (1, 7),
    (1, 13),
    (1, 17),
    (1, 19),
    (1, 21),
    (1, 30),
    (2, 3),
    (2, 7),
    (2, 8),
    (2, 9),
    (2, 13),
    (2, 27),
    (2, 28),
    (2, 32),
    (3, 7),
    (3, 12),
    (3, 13),
    (4, 6),
    (4, 10),
    (5, 6),
    (5, 10),
    (5, 16),
    (6, 16),
    (8, 30),
    (8, 32),
    (8, 33),
    (9, 33),
    (13, 33),
    (14, 32),
    (14, 33),
    (15, 32),
    (15, 33),
    (18, 32),
    (18, 33),
    (19, 33),
    (20, 32),
    (20, 33),
    (22, 32),
    (22, 33),
    (23, 25),
    (23, 27),
    (23, 29),
    (23, 32),
    (23, 33),
    (24, 25),
    (24, 27),
    (24, 31),
    (25, 31),
    (26, 29),
    (26, 33),
    (27, 33),
    (28, 31),
    (28, 33),
    (29, 32),
    (29, 33),
    (30, 32),
    (30, 33),
    (31, 32),
    (31, 33),
    (32, 33),
];

/// Build Zachary's karate club (34 nodes, 78 edges).
pub fn karate_club() -> Graph {
    graph_from_edges(EDGES)
}

/// The faction that sided with the instructor (node 0) after the split —
/// the usual ground truth for seed-based clustering around node 0.
pub fn karate_instructor_faction() -> Vec<u32> {
    vec![0, 1, 2, 3, 4, 5, 6, 7, 10, 11, 12, 13, 16, 17, 19, 21]
}

/// The faction that sided with the administrator (node 33).
pub fn karate_admin_faction() -> Vec<u32> {
    vec![
        8, 9, 14, 15, 18, 20, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let g = karate_club();
        assert_eq!(g.num_nodes(), 34);
        assert_eq!(g.num_edges(), 78);
        assert_eq!(g.degree(33), 17); // the administrator
        assert_eq!(g.degree(0), 16); // the instructor
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn factions_partition_the_club() {
        let a = karate_instructor_faction();
        let b = karate_admin_faction();
        assert_eq!(a.len() + b.len(), 34);
        let mut all: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 34);
    }

    #[test]
    fn factions_are_assortative() {
        // More edges inside the factions than across — the premise of
        // every community-detection demo on this graph.
        let g = karate_club();
        let a = karate_instructor_faction();
        let internal_a = crate::metrics::internal_edges(&g, &a);
        let mut b = karate_admin_faction();
        b.sort_unstable();
        let internal_b = crate::metrics::internal_edges(&g, &b);
        let across = g.num_edges() - internal_a - internal_b;
        assert!(
            internal_a + internal_b > 2 * across,
            "{internal_a}+{internal_b} vs {across}"
        );
    }

    #[test]
    fn connected() {
        let g = karate_club();
        assert_eq!(crate::components::num_components(&g), 1);
    }
}

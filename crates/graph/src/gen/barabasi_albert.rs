//! Barabási–Albert preferential attachment.

use rand::{Rng, RngExt};

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// Barabási–Albert scale-free graph: start from a star on `m_per + 1`
/// nodes, then attach each new node to `m_per` distinct existing nodes
/// chosen proportionally to degree (implemented with the classic
/// repeated-endpoints list, so each draw is O(1)).
///
/// The result has `n` nodes and roughly `m_per * n` edges with a power-law
/// degree tail — the degree profile of the paper's social-network datasets.
pub fn barabasi_albert<R: Rng>(n: usize, m_per: usize, rng: &mut R) -> Result<Graph, GraphError> {
    if m_per == 0 {
        return Err(GraphError::InvalidParameter("m_per must be >= 1".into()));
    }
    if n < m_per + 1 {
        return Err(GraphError::InvalidParameter(format!(
            "n={n} must exceed m_per={m_per} (need an initial core)"
        )));
    }
    if n > u32::MAX as usize {
        return Err(GraphError::InvalidParameter(format!(
            "n={n} exceeds u32 node ids"
        )));
    }

    let mut b = GraphBuilder::with_capacity(n * m_per);
    b.ensure_nodes(n);
    // Every edge endpoint is appended here; sampling an index uniformly
    // samples a node with probability proportional to its degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_per);

    // Initial star keeps the graph connected from the start.
    for v in 1..=m_per as NodeId {
        b.add_edge(0, v);
        endpoints.push(0);
        endpoints.push(v);
    }

    let mut targets: Vec<NodeId> = Vec::with_capacity(m_per);
    for v in (m_per as NodeId + 1)..n as NodeId {
        targets.clear();
        // Rejection-sample m_per *distinct* targets.
        while targets.len() < m_per {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn node_and_edge_counts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = barabasi_albert(500, 3, &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 500);
        // star: 3 edges; each of the 496 later nodes adds exactly 3.
        assert_eq!(g.num_edges(), 3 + 496 * 3);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn min_degree_is_m_per() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m_per = 4;
        let g = barabasi_albert(300, m_per, &mut rng).unwrap();
        let min_deg = g.nodes().map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg >= 1);
        // Every non-core node attaches to m_per distinct targets.
        for v in (m_per as u32 + 1)..300 {
            assert!(g.degree(v) >= m_per, "node {v} has degree {}", g.degree(v));
        }
    }

    #[test]
    fn produces_skewed_degrees() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = barabasi_albert(2000, 2, &mut rng).unwrap();
        // Preferential attachment must produce a hub well above average.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(barabasi_albert(10, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
    }

    #[test]
    fn graph_is_connected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = barabasi_albert(400, 2, &mut rng).unwrap();
        let labels = crate::components::connected_components(&g);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }
}

//! Erdős–Rényi random graphs: G(n, m) and G(n, p).

use std::collections::HashSet;

use rand::{Rng, RngExt};

use super::geometric_skip;
use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// G(n, m): exactly `m` distinct undirected edges chosen uniformly among
/// all `n(n-1)/2` pairs. Rejection sampling; intended for `m` well below
/// the complete graph (the regime of every experiment here).
pub fn erdos_renyi_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Result<Graph, GraphError> {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_edges {
        return Err(GraphError::InvalidParameter(format!(
            "G(n={n}, m={m}): at most {max_edges} edges possible"
        )));
    }
    if n > u32::MAX as usize {
        return Err(GraphError::InvalidParameter(format!(
            "n={n} exceeds u32 node ids"
        )));
    }
    let mut chosen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(m);
    b.ensure_nodes(n);
    while chosen.len() < m {
        let u = rng.random_range(0..n) as NodeId;
        let v = rng.random_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let (a, c) = if u < v { (u, v) } else { (v, u) };
        let key = (a as u64) << 32 | c as u64;
        if chosen.insert(key) {
            b.add_edge(a, c);
        }
    }
    Ok(b.build())
}

/// G(n, p): every pair appears independently with probability `p`.
/// Linear-expected-time skip sampling over the pair enumeration.
pub fn erdos_renyi_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter(format!(
            "p={p} must be in [0,1]"
        )));
    }
    if n > u32::MAX as usize {
        return Err(GraphError::InvalidParameter(format!(
            "n={n} exceeds u32 node ids"
        )));
    }
    let mut b = GraphBuilder::new();
    b.ensure_nodes(n);
    if p == 0.0 || n < 2 {
        return Ok(b.build());
    }
    // Enumerate pairs (u, v), u < v, as a flat index; jump geometric gaps.
    let total = n as u128 * (n as u128 - 1) / 2;
    let mut idx: u128 = geometric_skip(rng, p) as u128;
    while idx < total {
        let (u, v) = unrank_pair(idx, n);
        b.add_edge(u, v);
        idx += 1 + geometric_skip(rng, p) as u128;
    }
    Ok(b.build())
}

/// Map a flat pair index in `[0, n(n-1)/2)` back to `(u, v)` with `u < v`.
/// Pairs are ordered row by row: (0,1),(0,2),…,(0,n-1),(1,2),…
fn unrank_pair(idx: u128, n: usize) -> (NodeId, NodeId) {
    // Row u holds pairs (u, u+1..n), so it starts at
    // S(u) = sum_{i<u} (n-1-i) = u*(2n-u-1)/2. Binary search over u keeps
    // this exact for huge n.
    let row_start = |u: u128| -> u128 {
        let n = n as u128;
        u * (2 * n - u - 1) / 2
    };
    let (mut lo, mut hi) = (0u128, n as u128 - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (idx - row_start(u));
    (u as NodeId, v as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(100, 250, &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn gnm_rejects_impossible_m() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(erdos_renyi_gnm(4, 7, &mut rng).is_err());
        assert!(erdos_renyi_gnm(4, 6, &mut rng).is_ok());
    }

    #[test]
    fn gnm_complete_graph() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = erdos_renyi_gnm(6, 15, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 15);
        for u in 0..6u32 {
            assert_eq!(g.degree(u), 5);
        }
    }

    #[test]
    fn gnp_zero_and_one() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g0 = erdos_renyi_gnp(50, 0.0, &mut rng).unwrap();
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi_gnp(20, 1.0, &mut rng).unwrap();
        assert_eq!(g1.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt(),
            "got {got}, expected {expected}"
        );
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn gnp_rejects_bad_p() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(erdos_renyi_gnp(10, -0.1, &mut rng).is_err());
        assert!(erdos_renyi_gnp(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn unrank_pair_enumerates_all_pairs() {
        let n = 7;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total as u128 {
            let (u, v) = unrank_pair(idx, n);
            assert!(u < v, "u<v violated at {idx}: ({u},{v})");
            assert!((v as usize) < n);
            assert!(seen.insert((u, v)), "duplicate pair at {idx}");
        }
        assert_eq!(seen.len(), total);
    }
}

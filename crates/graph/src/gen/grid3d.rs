//! 3-dimensional grid — the paper's **3D-grid** dataset.
//!
//! "3D-grid is a synthetic grid graph in 3-dimensional space where every
//! node has six edges, each connecting it to its 2 neighbors in each
//! dimension." (§7.1) — i.e. a torus: wrap-around links make every node
//! exactly 6-regular.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// Build an `nx × ny × nz` grid. With `torus = true` (the paper's variant)
/// each dimension wraps, so every node has degree exactly 6 (when every
/// dimension has length ≥ 3); with `torus = false` boundary nodes have
/// lower degree.
pub fn grid3d(nx: usize, ny: usize, nz: usize, torus: bool) -> Result<Graph, GraphError> {
    let n = nx
        .checked_mul(ny)
        .and_then(|p| p.checked_mul(nz))
        .ok_or_else(|| GraphError::InvalidParameter("grid dimensions overflow".into()))?;
    if n == 0 {
        return Err(GraphError::InvalidParameter(
            "grid dimensions must be positive".into(),
        ));
    }
    if n > u32::MAX as usize {
        return Err(GraphError::InvalidParameter(format!(
            "n={n} exceeds u32 node ids"
        )));
    }

    let id = |x: usize, y: usize, z: usize| -> NodeId { (x + nx * (y + ny * z)) as NodeId };
    let mut b = GraphBuilder::with_capacity(3 * n);
    b.ensure_nodes(n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = id(x, y, z);
                // +1 neighbor in each dimension; the wrap edge closes the
                // ring. For a dimension of length 2 the wrap duplicates the
                // +1 edge and the builder dedups it; length 1 produces a
                // self-loop which the builder drops.
                if x + 1 < nx {
                    b.add_edge(v, id(x + 1, y, z));
                } else if torus {
                    b.add_edge(v, id(0, y, z));
                }
                if y + 1 < ny {
                    b.add_edge(v, id(x, y + 1, z));
                } else if torus {
                    b.add_edge(v, id(x, 0, z));
                }
                if z + 1 < nz {
                    b.add_edge(v, id(x, y, z + 1));
                } else if torus {
                    b.add_edge(v, id(x, y, 0));
                }
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_is_six_regular() {
        let g = grid3d(5, 4, 3, true).unwrap();
        assert_eq!(g.num_nodes(), 60);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 6, "node {v}");
        }
        assert_eq!(g.num_edges(), 3 * 60);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn open_grid_has_boundary() {
        let g = grid3d(4, 4, 4, false).unwrap();
        assert_eq!(g.num_nodes(), 64);
        // Corner nodes have degree 3.
        assert_eq!(g.degree(0), 3);
        // Interior node (1,1,1) has degree 6.
        let interior = (1 + 4 * (1 + 4)) as u32;
        assert_eq!(g.degree(interior), 6);
        assert_eq!(g.num_edges(), 3 * 4 * 4 * 3); // 3 dims * 3 links/row * 16 rows
    }

    #[test]
    fn degenerate_dimensions() {
        assert!(grid3d(0, 3, 3, true).is_err());
        // Length-2 wrap edges collapse onto the +1 edges.
        let g = grid3d(2, 2, 2, true).unwrap();
        assert_eq!(g.num_nodes(), 8);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
        // Length-1 dimensions contribute self-loops, which are dropped.
        let g = grid3d(1, 1, 5, true).unwrap();
        assert_eq!(g.num_nodes(), 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn connected() {
        let g = grid3d(6, 6, 6, true).unwrap();
        let labels = crate::components::connected_components(&g);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }
}

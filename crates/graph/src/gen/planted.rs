//! Planted-partition graphs with ground-truth communities.
//!
//! The paper's §7.6 evaluates F1 against the SNAP "top 5000 ground-truth
//! communities". Those labels are proprietary to the datasets; the standard
//! synthetic analogue is the planted-partition (symmetric stochastic block)
//! model, where the true communities are known by construction.

use rand::Rng;

use super::geometric_skip;
use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// A planted-partition graph together with its ground-truth communities.
#[derive(Clone, Debug)]
pub struct PlantedPartition {
    /// The generated graph (`num_communities * community_size` nodes).
    pub graph: Graph,
    /// Ground-truth communities; `communities[c]` lists the member nodes of
    /// community `c` in ascending order.
    pub communities: Vec<Vec<NodeId>>,
}

impl PlantedPartition {
    /// Ground-truth community id of a node.
    pub fn community_of(&self, v: NodeId) -> usize {
        let size = self.communities[0].len();
        v as usize / size
    }
}

/// Symmetric planted-partition model: `num_communities` blocks of
/// `community_size` nodes; intra-block pairs are edges with probability
/// `p_in`, inter-block pairs with probability `p_out < p_in`.
/// Expected intra-degree `(size-1)*p_in`, inter-degree
/// `(n-size)*p_out`. Skip sampling keeps generation O(n + m).
pub fn planted_partition<R: Rng>(
    num_communities: usize,
    community_size: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Result<PlantedPartition, GraphError> {
    if num_communities == 0 || community_size == 0 {
        return Err(GraphError::InvalidParameter("empty partition".into()));
    }
    for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameter(format!(
                "{name}={p} not in [0,1]"
            )));
        }
    }
    if p_out > p_in {
        return Err(GraphError::InvalidParameter(format!(
            "p_out={p_out} must not exceed p_in={p_in} (communities must be assortative)"
        )));
    }
    let n = num_communities
        .checked_mul(community_size)
        .ok_or_else(|| GraphError::InvalidParameter("partition size overflow".into()))?;
    if n > u32::MAX as usize {
        return Err(GraphError::InvalidParameter(format!(
            "n={n} exceeds u32 node ids"
        )));
    }

    let mut b = GraphBuilder::new();
    b.ensure_nodes(n);
    let base = |c: usize| (c * community_size) as NodeId;

    // Intra-community edges: skip-sample the size*(size-1)/2 pair grid.
    if p_in > 0.0 && community_size >= 2 {
        let pairs = community_size * (community_size - 1) / 2;
        for c in 0..num_communities {
            let mut idx = geometric_skip(rng, p_in);
            while idx < pairs {
                let (a, bb) = unrank_triangular(idx, community_size);
                b.add_edge(base(c) + a as NodeId, base(c) + bb as NodeId);
                idx += 1 + geometric_skip(rng, p_in);
            }
        }
    }

    // Inter-community edges: skip-sample each size x size block grid.
    if p_out > 0.0 {
        let cells = community_size * community_size;
        for c1 in 0..num_communities {
            for c2 in (c1 + 1)..num_communities {
                let mut idx = geometric_skip(rng, p_out);
                while idx < cells {
                    let a = idx / community_size;
                    let bb = idx % community_size;
                    b.add_edge(base(c1) + a as NodeId, base(c2) + bb as NodeId);
                    idx += 1 + geometric_skip(rng, p_out);
                }
            }
        }
    }

    let communities = (0..num_communities)
        .map(|c| (0..community_size).map(|i| base(c) + i as NodeId).collect())
        .collect();
    Ok(PlantedPartition {
        graph: b.build(),
        communities,
    })
}

/// Map a flat index in `[0, s(s-1)/2)` to a pair `(a, b)` with `a < b < s`.
fn unrank_triangular(idx: usize, s: usize) -> (usize, usize) {
    // Same row-major enumeration as the G(n,p) generator, linear scan is
    // fine here because callers iterate idx in increasing order anyway —
    // but keep it O(1)-ish with the closed form via search.
    let mut a = 0usize;
    let mut start = 0usize;
    loop {
        let row = s - 1 - a;
        if idx < start + row {
            return (a, a + 1 + (idx - start));
        }
        start += row;
        a += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn structure_and_counts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pp = planted_partition(4, 50, 0.3, 0.01, &mut rng).unwrap();
        assert_eq!(pp.graph.num_nodes(), 200);
        assert_eq!(pp.communities.len(), 4);
        assert!(pp.communities.iter().all(|c| c.len() == 50));
        assert_eq!(pp.community_of(0), 0);
        assert_eq!(pp.community_of(50), 1);
        assert_eq!(pp.community_of(199), 3);
        assert!(pp.graph.check_invariants().is_ok());
    }

    #[test]
    fn intra_density_exceeds_inter() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pp = planted_partition(3, 100, 0.2, 0.01, &mut rng).unwrap();
        let g = &pp.graph;
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if pp.community_of(u) == pp.community_of(v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Expected intra = 3 * C(100,2) * 0.2 = 2970; inter = 3*100*100*0.01 = 300.
        assert!(
            intra as f64 > 5.0 * inter as f64,
            "intra={intra} inter={inter}"
        );
        let expect_intra = 3.0 * (100.0 * 99.0 / 2.0) * 0.2;
        assert!((intra as f64 - expect_intra).abs() < 6.0 * expect_intra.sqrt());
    }

    #[test]
    fn edge_probability_boundaries() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pp = planted_partition(2, 10, 1.0, 0.0, &mut rng).unwrap();
        // Two disjoint cliques.
        assert_eq!(pp.graph.num_edges(), 2 * 45);
        let labels = crate::components::connected_components(&pp.graph);
        assert_ne!(labels[0], labels[10]);
    }

    #[test]
    fn parameter_validation() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(planted_partition(0, 10, 0.5, 0.1, &mut rng).is_err());
        assert!(planted_partition(2, 0, 0.5, 0.1, &mut rng).is_err());
        assert!(planted_partition(2, 10, 0.1, 0.5, &mut rng).is_err());
        assert!(planted_partition(2, 10, 1.1, 0.1, &mut rng).is_err());
    }

    #[test]
    fn unrank_triangular_covers_all_pairs() {
        let s = 9;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..s * (s - 1) / 2 {
            let (a, b) = unrank_triangular(idx, s);
            assert!(a < b && b < s);
            assert!(seen.insert((a, b)));
        }
        assert_eq!(seen.len(), s * (s - 1) / 2);
    }
}

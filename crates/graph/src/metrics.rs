//! Structural graph metrics used by the experiment harness.
//!
//! * clustering coefficients — §7.4 explains TEA+'s speedup profile via
//!   dataset clustering coefficients;
//! * subgraph density — the Figure 7 sensitivity study ranks subgraphs "by
//!   their densities" (edges per node, the classic Lawler density).

use rand::{Rng, RngExt};

use crate::csr::{Graph, NodeId};

/// Local clustering coefficient of `v`: fraction of neighbor pairs that are
/// themselves adjacent. 0 for degree < 2. O(d(v)^2 log dmax).
pub fn local_clustering_coefficient(graph: &Graph, v: NodeId) -> f64 {
    let adj = graph.neighbors(v);
    let d = adj.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for i in 0..d {
        for j in (i + 1)..d {
            if graph.has_edge(adj[i], adj[j]) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d * (d - 1)) as f64
}

/// Average clustering coefficient estimated over `samples` uniformly drawn
/// nodes. Exact (all nodes) when `samples >= n`.
pub fn avg_clustering_coefficient_sampled<R: Rng>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let n = graph.num_nodes();
    if n == 0 {
        return 0.0;
    }
    if samples >= n {
        let total: f64 = graph
            .nodes()
            .map(|v| local_clustering_coefficient(graph, v))
            .sum();
        return total / n as f64;
    }
    let mut total = 0.0;
    for _ in 0..samples {
        let v = rng.random_range(0..n) as NodeId;
        total += local_clustering_coefficient(graph, v);
    }
    total / samples as f64
}

/// Number of edges with both endpoints inside `nodes` (must be sorted
/// unique). O(vol(nodes) log |nodes|).
pub fn internal_edges(graph: &Graph, nodes: &[NodeId]) -> usize {
    debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
    let mut count = 0usize;
    for &u in nodes {
        for &v in graph.neighbors(u) {
            if v > u && nodes.binary_search(&v).is_ok() {
                count += 1;
            }
        }
    }
    count
}

/// Subgraph density `|E(S)| / |S|` (edges per node) of a sorted node set.
/// This is the density notion the paper cites (Lawler, *Combinatorial
/// Optimization*) for the Figure 7 seed stratification.
pub fn subgraph_density(graph: &Graph, nodes: &[NodeId]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    internal_edges(graph, nodes) as f64 / nodes.len() as f64
}

/// Full degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn triangle_has_full_clustering() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0)]);
        for v in g.nodes() {
            assert!((local_clustering_coefficient(&g, v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(local_clustering_coefficient(&g, 0), 0.0);
        assert_eq!(local_clustering_coefficient(&g, 1), 0.0); // degree 1
    }

    #[test]
    fn paw_graph_partial_clustering() {
        // Triangle 0-1-2 plus pendant 3 on node 0: cc(0) = 1/3.
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (0, 3)]);
        assert!((local_clustering_coefficient(&g, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_cc_exact_when_samples_cover() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (0, 3)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let exact = avg_clustering_coefficient_sampled(&g, 100, &mut rng);
        // (1/3 + 1 + 1 + 0) / 4
        assert!((exact - (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn internal_edges_and_density() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        assert_eq!(internal_edges(&g, &[0, 1, 2]), 3);
        assert_eq!(internal_edges(&g, &[0, 3]), 0);
        assert!((subgraph_density(&g, &[0, 1, 2]) - 1.0).abs() < 1e-12);
        assert_eq!(subgraph_density(&g, &[]), 0.0);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.num_nodes());
        assert_eq!(hist[3], 1); // node 2
        assert_eq!(hist[1], 1); // node 3
        assert_eq!(hist[2], 2); // nodes 0, 1
    }
}

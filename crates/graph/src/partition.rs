//! Contiguous node-range partitioning for sharded serving.
//!
//! Shard processes split a snapshot's *adjacency rows* into contiguous
//! node ranges: shard `i` answers neighbor lookups for nodes in
//! `[starts[i], starts[i+1])`. Ranges are cut so each shard holds roughly
//! `volume / shards` adjacency entries (degree-weighted balance), because
//! walk traffic on an undirected graph is proportional to degree mass,
//! not node count.
//!
//! The partition is a pure function of `(n, degree prefix sums, shards)`,
//! so the coordinator and every shard derive identical boundaries from
//! the same snapshot without exchanging them — the wire handshake only
//! cross-checks.

use crate::csr::{Graph, NodeId};

/// A contiguous node-range partition: `starts` has `shards + 1` entries,
/// `starts[0] == 0`, `starts[shards] == n`, monotone non-decreasing.
/// Shard `i` owns `[starts[i], starts[i+1])`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodePartition {
    starts: Vec<NodeId>,
}

impl NodePartition {
    /// Cut `graph`'s node range into `shards` volume-balanced contiguous
    /// slices: boundary `i` is the first node whose prefix adjacency
    /// offset reaches `i * volume / shards`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn volume_balanced(graph: &Graph, shards: usize) -> Self {
        assert!(shards > 0, "a partition needs at least one shard");
        let n = graph.num_nodes() as u32;
        let volume = graph.volume() as u64;
        let mut starts = Vec::with_capacity(shards + 1);
        starts.push(0);
        let mut node: u32 = 0;
        for i in 1..shards {
            let target = volume * i as u64 / shards as u64;
            // Advance to the first node whose row starts at or past the
            // target offset. Rows are contiguous, so graph.neighbor_row
            // yields the prefix sum directly.
            while node < n && (graph.neighbor_row(node).0 as u64) < target {
                node += 1;
            }
            starts.push(node);
        }
        starts.push(n);
        NodePartition { starts }
    }

    /// Reconstruct a partition from raw boundary array (the wire
    /// handshake form). Returns `None` unless `starts` is a valid
    /// monotone cover of `[0, n]`.
    pub fn from_starts(starts: Vec<NodeId>, n: u32) -> Option<Self> {
        if starts.len() < 2 || starts[0] != 0 || *starts.last().unwrap() != n {
            return None;
        }
        if starts.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        Some(NodePartition { starts })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// The boundary array (`shards + 1` entries).
    pub fn starts(&self) -> &[NodeId] {
        &self.starts
    }

    /// The node range `[lo, hi)` owned by `shard`.
    pub fn range(&self, shard: usize) -> (NodeId, NodeId) {
        (self.starts[shard], self.starts[shard + 1])
    }

    /// Which shard owns `node`'s adjacency row.
    pub fn owner(&self, node: NodeId) -> usize {
        // partition_point finds the first start > node; owning range is
        // the one before it. Empty ranges have start == next start and
        // are skipped by the strict comparison.
        self.starts
            .partition_point(|&s| s <= node)
            .saturating_sub(1)
    }

    /// Whether `shard` owns `node`'s adjacency row.
    pub fn owns(&self, shard: usize, node: NodeId) -> bool {
        let (lo, hi) = self.range(shard);
        (lo..hi).contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::holme_kim;
    use rand::{rngs::SmallRng, SeedableRng};

    fn graph() -> Graph {
        let mut rng = SmallRng::seed_from_u64(5);
        holme_kim(500, 4, 0.25, &mut rng).unwrap()
    }

    #[test]
    fn covers_all_nodes_exactly_once() {
        let g = graph();
        for shards in [1, 2, 3, 4, 7, 16] {
            let p = NodePartition::volume_balanced(&g, shards);
            assert_eq!(p.shards(), shards);
            assert_eq!(p.starts()[0], 0);
            assert_eq!(*p.starts().last().unwrap(), g.num_nodes() as u32);
            for v in 0..g.num_nodes() as u32 {
                let o = p.owner(v);
                assert!(p.owns(o, v), "node {v} owner {o}");
                for s in 0..shards {
                    assert_eq!(p.owns(s, v), s == o);
                }
            }
        }
    }

    #[test]
    fn volume_is_roughly_balanced() {
        let g = graph();
        let p = NodePartition::volume_balanced(&g, 4);
        let vol: Vec<u64> = (0..4)
            .map(|s| {
                let (lo, hi) = p.range(s);
                (lo..hi).map(|v| g.degree(v) as u64).sum()
            })
            .collect();
        assert_eq!(vol.iter().sum::<u64>(), g.volume() as u64);
        // Contiguous degree-prefix cuts can miss the ideal quarter by at
        // most one node's degree; holme_kim max degree is far below a
        // quarter of the volume.
        let ideal = g.volume() as u64 / 4;
        for v in &vol {
            assert!(
                v.abs_diff(ideal) < ideal / 2,
                "shard volume {v} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let g = graph();
        let p = NodePartition::volume_balanced(&g, 1);
        assert_eq!(p.range(0), (0, g.num_nodes() as u32));
        for v in 0..g.num_nodes() as u32 {
            assert_eq!(p.owner(v), 0);
        }
    }

    #[test]
    fn from_starts_validates() {
        assert!(NodePartition::from_starts(vec![0, 5, 10], 10).is_some());
        assert!(NodePartition::from_starts(vec![0, 10], 10).is_some());
        assert!(NodePartition::from_starts(vec![0, 5, 5, 10], 10).is_some());
        assert!(NodePartition::from_starts(vec![0, 6, 5, 10], 10).is_none());
        assert!(NodePartition::from_starts(vec![1, 10], 10).is_none());
        assert!(NodePartition::from_starts(vec![0, 9], 10).is_none());
        assert!(NodePartition::from_starts(vec![0], 0).is_none());
        let p = NodePartition::from_starts(vec![0, 5, 5, 10], 10).unwrap();
        assert_eq!(p.owner(4), 0);
        // Node 5 belongs to the non-empty third range, not the empty one.
        assert_eq!(p.owner(5), 2);
    }

    #[test]
    fn more_shards_than_volume_yields_empty_tail_ranges() {
        let mut b = crate::GraphBuilder::new();
        b.add_edge(0, 1);
        let g = b.build();
        let p = NodePartition::volume_balanced(&g, 4);
        assert_eq!(p.shards(), 4);
        for v in 0..g.num_nodes() as u32 {
            let o = p.owner(v);
            assert!(p.owns(o, v));
        }
    }
}

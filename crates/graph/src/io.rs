//! Graph serialization: SNAP-style text edge lists and a compact binary
//! format.
//!
//! The text format is one `u v` pair per line, whitespace separated, with
//! `#` / `%` comment lines — the format of the SNAP dumps the paper uses.
//! The binary format stores the CSR arrays directly so multi-million-edge
//! stand-in datasets load in O(m) byte copies instead of O(m log m)
//! re-parsing; the bench harness caches generated datasets this way.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// Magic prefix of the binary format (version 1).
const MAGIC: &[u8; 8] = b"HKGRAPH1";

/// Parse a text edge list from a reader. Lines starting with `#` or `%` and
/// blank lines are skipped; node ids must fit in `u32`.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u = parse_node(it.next(), idx + 1)?;
        let v = parse_node(it.next(), idx + 1)?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

fn parse_node(tok: Option<&str>, line: usize) -> Result<NodeId, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        msg: "expected two node ids per line".into(),
    })?;
    tok.parse::<NodeId>().map_err(|e| GraphError::Parse {
        line,
        msg: format!("bad node id {tok:?}: {e}"),
    })
}

/// Load a text edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Write a graph as a text edge list (`u v` with `u < v`, one per line).
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# undirected graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Save a text edge list to a file path.
pub fn save_edge_list<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    write_edge_list(graph, File::create(path)?)
}

/// Write the compact binary representation.
///
/// Layout: magic, `n: u64`, `arcs: u64`, then `n+1` offsets as `u64` and
/// `arcs` neighbor ids as `u32`, all little-endian.
pub fn write_binary<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    let n = graph.num_nodes() as u64;
    let arcs = graph.volume() as u64;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&arcs.to_le_bytes())?;
    let mut off = 0u64;
    w.write_all(&off.to_le_bytes())?;
    for v in graph.nodes() {
        off += graph.degree(v) as u64;
        w.write_all(&off.to_le_bytes())?;
    }
    for v in graph.nodes() {
        for &u in graph.neighbors(v) {
            w.write_all(&u.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Save the binary representation to a file path.
pub fn save_binary<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    write_binary(graph, File::create(path)?)
}

/// Read the compact binary representation.
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format(
            "bad magic (not an HKGRAPH1 file)".into(),
        ));
    }
    let n = read_u64(&mut r)? as usize;
    let arcs = read_u64(&mut r)? as usize;
    if n > u32::MAX as usize {
        return Err(GraphError::Format(format!(
            "node count {n} exceeds u32 ids"
        )));
    }
    if !arcs.is_multiple_of(2) {
        return Err(GraphError::Format(format!("odd arc count {arcs}")));
    }
    // Do not pre-reserve from the (unvalidated) header: a corrupted size
    // must fail at EOF, not abort on allocation.
    let mut offsets = Vec::new();
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    if offsets[0] != 0 || offsets[n] != arcs {
        return Err(GraphError::Format("inconsistent offsets".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphError::Format(
            "offsets not monotone (corrupted file)".into(),
        ));
    }
    // A single node's degree must fit in u32 (`Graph` stores dense u32
    // degrees); a crafted offset table claiming a larger one must be a
    // typed error here, not a downstream assertion in `from_csr`.
    if let Some(w) = offsets.windows(2).find(|w| w[1] - w[0] > u32::MAX as usize) {
        return Err(GraphError::Format(format!(
            "degree {} exceeds u32 (corrupted file)",
            w[1] - w[0]
        )));
    }
    let mut neighbors = Vec::new();
    let mut buf = [0u8; 4];
    for _ in 0..arcs {
        r.read_exact(&mut buf)?;
        let id = u32::from_le_bytes(buf);
        if id as usize >= n {
            return Err(GraphError::NodeOutOfRange {
                node: id as u64,
                num_nodes: n,
            });
        }
        neighbors.push(id);
    }
    Ok(Graph::from_csr(offsets, neighbors))
}

/// Load the binary representation from a file path.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_binary(File::open(path)?)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn sample() -> Graph {
        graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_parser_skips_comments_and_blanks() {
        let text = "# header\n\n% another comment\n0 1\n  1   2  \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_parser_reports_line_numbers() {
        let text = "0 1\nnot_a_node 2\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_parser_requires_two_tokens() {
        let text = "0\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC________".to_vec();
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::Format(_))));
    }

    #[test]
    fn binary_rejects_truncated_file() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_neighbor() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Overwrite the last neighbor id with an out-of-range value.
        let last = buf.len() - 4;
        buf[last..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hk_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        let txt = dir.join("g.txt");
        let bin = dir.join("g.bin");
        save_edge_list(&g, &txt).unwrap();
        save_binary(&g, &bin).unwrap();
        assert_eq!(load_edge_list(&txt).unwrap(), g);
        assert_eq!(load_binary(&bin).unwrap(), g);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn binary_roundtrip_arbitrary(edges in prop::collection::vec((0u32..60, 0u32..60), 0..200)) {
            let mut b = GraphBuilder::new();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            let g = b.build();
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            prop_assert_eq!(read_binary(&buf[..]).unwrap(), g);
        }

        #[test]
        fn text_roundtrip_arbitrary(edges in prop::collection::vec((0u32..60, 0u32..60), 0..200)) {
            let mut b = GraphBuilder::new();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            let g = b.build();
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            let g2 = read_edge_list(&buf[..]).unwrap();
            // Text format drops trailing isolated nodes; compare edges.
            let e1: Vec<_> = g.edges().collect();
            let e2: Vec<_> = g2.edges().collect();
            prop_assert_eq!(e1, e2);
        }
    }
}

//! Graph serialization: SNAP-style text edge lists and two binary
//! snapshot formats.
//!
//! The text format is one `u v` pair per line, whitespace separated, with
//! `#` / `%` comment lines — the format of the SNAP dumps the paper uses.
//!
//! # Binary snapshots
//!
//! **v1** (`HKGRAPH1`) is the original streaming format: magic, `n`,
//! `arcs`, then offsets as `u64` and neighbor ids as `u32`. It must be
//! parsed value-by-value into fresh heap arrays — an O(file) copy plus
//! allocator traffic per load.
//!
//! **v2** (`HKGRAPH2`) is the *servable* format: a fixed 64-byte header,
//! a checksummed section table, and one 64-byte-aligned section per CSR
//! array (offsets `u64`, neighbors `u32`, degrees `u32`), each with its
//! own FNV-1a checksum. Because every section is aligned and already in
//! the in-memory layout, a loader can read (or mmap) the whole file into
//! one aligned arena and hand out slices *in place* — see
//! [`crate::storage`]. That is what lets a multi-graph registry hold many
//! snapshots resident for the price of one buffer each.
//!
//! ```text
//! offset  size  field
//! 0x00    8     magic  "HKGRAPH2"
//! 0x08    4     version (= 2), little-endian u32
//! 0x0c    4     flags   (= 0, reserved)
//! 0x10    8     n       (node count, u64)
//! 0x18    8     arcs    (2m, u64)
//! 0x20    4     section count (= 3)
//! 0x24    4     reserved (= 0)
//! 0x28    8     FNV-1a checksum of the section table bytes
//! 0x30    16    reserved (= 0)
//! 0x40    96    section table: 3 entries x 32 bytes
//!               { kind u32, elem_size u32, byte_off u64, elem_count u64,
//!                 checksum u64 }
//! 0xc0    ...   sections (offsets, neighbors, degrees), each starting on
//!               a 64-byte boundary, zero-padded between and after
//! ```
//!
//! Section kinds: 1 = offsets, 2 = neighbors, 3 = degrees. All integers
//! little-endian. The v2 loader validates the header, the table checksum,
//! section alignment/bounds/non-overlap, every per-section checksum, and
//! the structural invariants that memory safety rests on — monotone
//! offsets consistent with `n`/`arcs`, degree-array/offset agreement,
//! neighbor ids in range — before constructing a graph, so the unchecked
//! hot-path accessors stay sound even on arena-backed graphs. Adjacency
//! *sortedness and symmetry* are trusted from the writer (exactly as the
//! v1 loader trusts them): a nonconforming third-party writer produces a
//! graph whose `has_edge`/sweep answers are wrong but whose memory
//! accesses are still in bounds; run
//! [`Graph::check_invariants`](crate::Graph::check_invariants) on
//! untrusted snapshots.
//! [`save_binary_v2`] is the v1 → v2 conversion path: load any supported
//! format, write v2.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;
use crate::storage::{Arena, SECTION_ALIGN};

/// Magic prefix of the binary format (version 1).
const MAGIC: &[u8; 8] = b"HKGRAPH1";
/// Magic prefix of the aligned snapshot format (version 2).
const MAGIC_V2: &[u8; 8] = b"HKGRAPH2";
/// Version field value of the v2 format.
const V2_VERSION: u32 = 2;
/// Fixed v2 header length (before the section table).
const V2_HEADER_BYTES: usize = 0x40;
/// Bytes per section-table entry.
const V2_ENTRY_BYTES: usize = 32;
/// Section count of the v2 format.
const V2_SECTIONS: usize = 3;
/// Section kinds, in file order.
const KIND_OFFSETS: u32 = 1;
const KIND_NEIGHBORS: u32 = 2;
const KIND_DEGREES: u32 = 3;

/// Parse a text edge list from a reader. Lines starting with `#` or `%` and
/// blank lines are skipped; node ids must fit in `u32`.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u = parse_node(it.next(), idx + 1)?;
        let v = parse_node(it.next(), idx + 1)?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

fn parse_node(tok: Option<&str>, line: usize) -> Result<NodeId, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        msg: "expected two node ids per line".into(),
    })?;
    tok.parse::<NodeId>().map_err(|e| GraphError::Parse {
        line,
        msg: format!("bad node id {tok:?}: {e}"),
    })
}

/// Load a text edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Write a graph as a text edge list (`u v` with `u < v`, one per line).
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# undirected graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Save a text edge list to a file path.
pub fn save_edge_list<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    write_edge_list(graph, File::create(path)?)
}

/// Write the compact v1 binary representation.
///
/// Layout: magic, `n: u64`, `arcs: u64`, then `n+1` offsets as `u64` and
/// `arcs` neighbor ids as `u32`, all little-endian.
pub fn write_binary<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    let n = graph.num_nodes() as u64;
    let arcs = graph.volume() as u64;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&arcs.to_le_bytes())?;
    let mut off = 0u64;
    w.write_all(&off.to_le_bytes())?;
    for v in graph.nodes() {
        off += graph.degree(v) as u64;
        w.write_all(&off.to_le_bytes())?;
    }
    for v in graph.nodes() {
        for &u in graph.neighbors(v) {
            w.write_all(&u.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Save the v1 binary representation to a file path.
pub fn save_binary<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    write_binary(graph, File::create(path)?)
}

/// Read a binary snapshot from a reader, auto-detecting the version by
/// magic. A v1 stream parses into the owned backend; a v2 stream is read
/// to the end and loaded through an aligned arena (zero-copy section
/// views). For files, prefer [`load_binary`] / [`load_binary_v2`] /
/// `load_binary_mmap`, which avoid the intermediate buffer.
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic == MAGIC {
        return read_binary_v1_body(&mut r);
    }
    if &magic == MAGIC_V2 {
        let mut rest = Vec::new();
        r.read_to_end(&mut rest)?;
        let mut arena = Arena::zeroed(8 + rest.len());
        let buf = arena.as_mut_slice();
        buf[..8].copy_from_slice(&magic);
        buf[8..].copy_from_slice(&rest);
        return read_binary_v2_from_arena(Arc::new(arena));
    }
    Err(GraphError::Format(
        "bad magic (not an HKGRAPH1/HKGRAPH2 file)".into(),
    ))
}

/// v1 body parser; `r` is positioned just past the magic.
fn read_binary_v1_body<R: Read>(r: &mut R) -> Result<Graph, GraphError> {
    let n = read_u64(r)? as usize;
    let arcs = read_u64(r)? as usize;
    if n > u32::MAX as usize {
        return Err(GraphError::Format(format!(
            "node count {n} exceeds u32 ids"
        )));
    }
    if !arcs.is_multiple_of(2) {
        return Err(GraphError::Format(format!("odd arc count {arcs}")));
    }
    // Do not pre-reserve from the (unvalidated) header: a corrupted size
    // must fail at EOF, not abort on allocation.
    let mut offsets = Vec::new();
    for _ in 0..=n {
        offsets.push(read_u64(r)? as usize);
    }
    if offsets[0] != 0 || offsets[n] != arcs {
        return Err(GraphError::Format("inconsistent offsets".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphError::Format(
            "offsets not monotone (corrupted file)".into(),
        ));
    }
    // A single node's degree must fit in u32 (`Graph` stores dense u32
    // degrees); a crafted offset table claiming a larger one must be a
    // typed error here, not a downstream assertion in `from_csr`.
    if let Some(w) = offsets.windows(2).find(|w| w[1] - w[0] > u32::MAX as usize) {
        return Err(GraphError::Format(format!(
            "degree {} exceeds u32 (corrupted file)",
            w[1] - w[0]
        )));
    }
    let mut neighbors = Vec::new();
    let mut buf = [0u8; 4];
    for _ in 0..arcs {
        r.read_exact(&mut buf)?;
        let id = u32::from_le_bytes(buf);
        if id as usize >= n {
            return Err(GraphError::NodeOutOfRange {
                node: id as u64,
                num_nodes: n,
            });
        }
        neighbors.push(id);
    }
    Ok(Graph::from_csr(offsets, neighbors))
}

/// Load a binary snapshot from a file path, auto-detecting v1 vs v2 by
/// magic. v2 files load through the aligned-arena path (one `read` into
/// one buffer, sections viewed in place).
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let mut f = File::open(path)?;
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    f.seek(SeekFrom::Start(0))?;
    if &magic == MAGIC_V2 {
        load_v2_into_arena(f)
    } else {
        read_binary(f)
    }
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

// ---------------------------------------------------------------------------
// v2: aligned, checksummed snapshot format
// ---------------------------------------------------------------------------

/// Round `x` up to the next [`SECTION_ALIGN`] boundary.
fn align64(x: u64) -> u64 {
    x.div_ceil(SECTION_ALIGN as u64) * SECTION_ALIGN as u64
}

/// FNV-1a over a byte slice — the checksum of the v2 format. Not
/// cryptographic; it detects the corruption classes that actually occur
/// (truncation, bit rot, partial writes), like the CRC of other columnar
/// formats.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write the v2 snapshot representation (see the module docs for the
/// layout). This is also the v1 → v2 conversion path: `load_binary` any
/// existing file, then `write_binary_v2` it.
pub fn write_binary_v2<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let n = graph.num_nodes() as u64;
    let arcs = graph.volume() as u64;

    // Materialize the three section payloads so their checksums are known
    // before the header is emitted. (Snapshot writing is cold; one pass
    // of buffering is the simple correct thing.)
    let mut offsets = Vec::with_capacity(((n + 1) * 8) as usize);
    let mut running = 0u64;
    offsets.extend_from_slice(&running.to_le_bytes());
    for v in graph.nodes() {
        running += graph.degree(v) as u64;
        offsets.extend_from_slice(&running.to_le_bytes());
    }
    let mut neighbors = Vec::with_capacity((arcs * 4) as usize);
    for v in graph.nodes() {
        for &u in graph.neighbors(v) {
            neighbors.extend_from_slice(&u.to_le_bytes());
        }
    }
    let mut degrees = Vec::with_capacity((n * 4) as usize);
    for v in graph.nodes() {
        degrees.extend_from_slice(&(graph.degree(v) as u32).to_le_bytes());
    }

    let data_start = align64((V2_HEADER_BYTES + V2_SECTIONS * V2_ENTRY_BYTES) as u64);
    let off_pos = data_start;
    let nbr_pos = align64(off_pos + offsets.len() as u64);
    let deg_pos = align64(nbr_pos + neighbors.len() as u64);
    let file_end = align64(deg_pos + degrees.len() as u64);

    // Section table.
    let mut table = Vec::with_capacity(V2_SECTIONS * V2_ENTRY_BYTES);
    for (kind, elem_size, pos, count, payload) in [
        (KIND_OFFSETS, 8u32, off_pos, n + 1, &offsets),
        (KIND_NEIGHBORS, 4, nbr_pos, arcs, &neighbors),
        (KIND_DEGREES, 4, deg_pos, n, &degrees),
    ] {
        table.extend_from_slice(&kind.to_le_bytes());
        table.extend_from_slice(&elem_size.to_le_bytes());
        table.extend_from_slice(&pos.to_le_bytes());
        table.extend_from_slice(&count.to_le_bytes());
        table.extend_from_slice(&fnv1a(payload).to_le_bytes());
    }

    // Header.
    let mut header = [0u8; V2_HEADER_BYTES];
    header[0x00..0x08].copy_from_slice(MAGIC_V2);
    header[0x08..0x0c].copy_from_slice(&V2_VERSION.to_le_bytes());
    // 0x0c..0x10: flags = 0
    header[0x10..0x18].copy_from_slice(&n.to_le_bytes());
    header[0x18..0x20].copy_from_slice(&arcs.to_le_bytes());
    header[0x20..0x24].copy_from_slice(&(V2_SECTIONS as u32).to_le_bytes());
    // 0x24..0x28: reserved = 0
    header[0x28..0x30].copy_from_slice(&fnv1a(&table).to_le_bytes());
    // 0x30..0x40: reserved = 0

    fn emit<W: Write>(
        w: &mut BufWriter<W>,
        written: &mut u64,
        bytes: &[u8],
    ) -> Result<(), GraphError> {
        w.write_all(bytes)?;
        *written += bytes.len() as u64;
        Ok(())
    }
    fn pad_to<W: Write>(
        w: &mut BufWriter<W>,
        written: &mut u64,
        target: u64,
    ) -> Result<(), GraphError> {
        debug_assert!(target >= *written);
        const ZEROS: [u8; SECTION_ALIGN] = [0; SECTION_ALIGN];
        let mut gap = (target - *written) as usize;
        while gap > 0 {
            let chunk = gap.min(SECTION_ALIGN);
            w.write_all(&ZEROS[..chunk])?;
            gap -= chunk;
        }
        *written = target;
        Ok(())
    }
    let mut w = BufWriter::new(writer);
    let mut written = 0u64;
    emit(&mut w, &mut written, &header)?;
    emit(&mut w, &mut written, &table)?;
    pad_to(&mut w, &mut written, off_pos)?;
    emit(&mut w, &mut written, &offsets)?;
    pad_to(&mut w, &mut written, nbr_pos)?;
    emit(&mut w, &mut written, &neighbors)?;
    pad_to(&mut w, &mut written, deg_pos)?;
    emit(&mut w, &mut written, &degrees)?;
    pad_to(&mut w, &mut written, file_end)?;
    w.flush()?;
    Ok(())
}

/// Save the v2 snapshot representation to a file path.
pub fn save_binary_v2<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    write_binary_v2(graph, File::create(path)?)
}

/// Fully validated byte layout of a v2 image: the three section ranges
/// (in bytes) plus the logical sizes. Producing this value means every
/// check listed in the module docs has passed.
struct V2Layout {
    n: usize,
    arcs: usize,
    offsets: std::ops::Range<usize>,
    neighbors: std::ops::Range<usize>,
    degrees: std::ops::Range<usize>,
}

fn v2_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn v2_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

/// Validate a v2 image end to end. Every failure is a typed
/// [`GraphError`]; no access past `buf` ever occurs because all ranges
/// are bounds-checked against `buf.len()` in `u64` arithmetic before use.
fn validate_v2(buf: &[u8]) -> Result<V2Layout, GraphError> {
    let table_end = V2_HEADER_BYTES + V2_SECTIONS * V2_ENTRY_BYTES;
    if buf.len() < table_end {
        return Err(GraphError::Format(format!(
            "truncated v2 header: {} bytes, need at least {table_end}",
            buf.len()
        )));
    }
    if &buf[..8] != MAGIC_V2 {
        return Err(GraphError::Format(
            "bad magic (not an HKGRAPH2 file)".into(),
        ));
    }
    let version = v2_u32(buf, 0x08);
    if version != V2_VERSION {
        return Err(GraphError::Format(format!(
            "unsupported snapshot version {version} (expected {V2_VERSION})"
        )));
    }
    let flags = v2_u32(buf, 0x0c);
    if flags != 0 {
        return Err(GraphError::Format(format!(
            "unknown snapshot flags {flags:#x}"
        )));
    }
    let n = v2_u64(buf, 0x10);
    let arcs = v2_u64(buf, 0x18);
    if n > u32::MAX as u64 {
        return Err(GraphError::Format(format!(
            "node count {n} exceeds u32 ids"
        )));
    }
    if !arcs.is_multiple_of(2) {
        return Err(GraphError::Format(format!("odd arc count {arcs}")));
    }
    let sections = v2_u32(buf, 0x20);
    if sections as usize != V2_SECTIONS {
        return Err(GraphError::Format(format!(
            "expected {V2_SECTIONS} sections, header claims {sections}"
        )));
    }
    let table = &buf[V2_HEADER_BYTES..table_end];
    let stored_table_sum = v2_u64(buf, 0x28);
    let actual_table_sum = fnv1a(table);
    if stored_table_sum != actual_table_sum {
        return Err(GraphError::ChecksumMismatch {
            section: "section table",
            expected: stored_table_sum,
            actual: actual_table_sum,
        });
    }

    let expected: [(&'static str, u32, u32, u64); V2_SECTIONS] = [
        ("offsets", KIND_OFFSETS, 8, n + 1),
        ("neighbors", KIND_NEIGHBORS, 4, arcs),
        ("degrees", KIND_DEGREES, 4, n),
    ];
    let file_len = buf.len() as u64;
    let mut prev_end = align64(table_end as u64);
    let mut ranges = [0..0usize, 0..0, 0..0];
    for (i, (name, want_kind, want_elem, want_count)) in expected.into_iter().enumerate() {
        let at = V2_HEADER_BYTES + i * V2_ENTRY_BYTES;
        let kind = v2_u32(buf, at);
        let elem = v2_u32(buf, at + 4);
        let pos = v2_u64(buf, at + 8);
        let count = v2_u64(buf, at + 16);
        let stored_sum = v2_u64(buf, at + 24);
        if kind != want_kind {
            return Err(GraphError::Format(format!(
                "section {i}: kind {kind}, expected {want_kind} ({name})"
            )));
        }
        if elem != want_elem {
            return Err(GraphError::Format(format!(
                "section {name}: element size {elem}, expected {want_elem}"
            )));
        }
        if count != want_count {
            return Err(GraphError::Format(format!(
                "section {name}: {count} elements, header implies {want_count}"
            )));
        }
        if !pos.is_multiple_of(SECTION_ALIGN as u64) {
            return Err(GraphError::Format(format!(
                "section {name}: byte offset {pos} not {SECTION_ALIGN}-byte aligned"
            )));
        }
        if pos < prev_end {
            return Err(GraphError::Format(format!(
                "section {name}: byte offset {pos} overlaps the previous section (ends {prev_end})"
            )));
        }
        let byte_len = count
            .checked_mul(elem as u64)
            .ok_or_else(|| GraphError::Format(format!("section {name}: size overflow")))?;
        let end = pos
            .checked_add(byte_len)
            .ok_or_else(|| GraphError::Format(format!("section {name}: size overflow")))?;
        if end > file_len {
            return Err(GraphError::Format(format!(
                "section {name}: ends at {end}, file has {file_len} bytes (truncated?)"
            )));
        }
        let range = pos as usize..end as usize;
        let actual_sum = fnv1a(&buf[range.clone()]);
        if stored_sum != actual_sum {
            return Err(GraphError::ChecksumMismatch {
                section: name,
                expected: stored_sum,
                actual: actual_sum,
            });
        }
        ranges[i] = range;
        prev_end = align64(end);
    }
    if prev_end != file_len {
        return Err(GraphError::Format(format!(
            "file has {file_len} bytes, sections (padded) end at {prev_end}"
        )));
    }

    let [off_range, nbr_range, deg_range] = ranges;
    let n = n as usize;
    let arcs = arcs as usize;

    // Structural validation — the same guarantees the v1 parser enforces,
    // plus degree-array consistency. These are what make the unchecked
    // accessors of the walk kernels sound on this graph.
    let off_at = |i: usize| v2_u64(buf, off_range.start + i * 8);
    if off_at(0) != 0 {
        return Err(GraphError::Format("inconsistent offsets".into()));
    }
    if off_at(n) != arcs as u64 {
        return Err(GraphError::Format("inconsistent offsets".into()));
    }
    let mut prev = 0u64;
    for v in 0..n {
        let next = off_at(v + 1);
        if next < prev {
            return Err(GraphError::Format(
                "offsets not monotone (corrupted file)".into(),
            ));
        }
        let degree = next - prev;
        if degree > u32::MAX as u64 {
            return Err(GraphError::Format(format!(
                "degree {degree} exceeds u32 (corrupted file)"
            )));
        }
        let stored_degree = v2_u32(buf, deg_range.start + v * 4);
        if stored_degree as u64 != degree {
            return Err(GraphError::Format(format!(
                "degree section disagrees with offsets at node {v}"
            )));
        }
        prev = next;
    }
    for i in 0..arcs {
        let id = v2_u32(buf, nbr_range.start + i * 4);
        if id as usize >= n {
            return Err(GraphError::NodeOutOfRange {
                node: id as u64,
                num_nodes: n,
            });
        }
    }

    Ok(V2Layout {
        n,
        arcs,
        offsets: off_range,
        neighbors: nbr_range,
        degrees: deg_range,
    })
}

/// Load a v2 snapshot held in an aligned arena, validating it fully and
/// viewing the CSR sections in place (zero-copy on 64-bit little-endian
/// targets; a parse-and-copy fallback keeps other targets correct).
pub fn read_binary_v2_from_arena(arena: Arc<Arena>) -> Result<Graph, GraphError> {
    let layout = validate_v2(arena.as_slice())?;
    #[cfg(all(target_pointer_width = "64", target_endian = "little"))]
    {
        let buf = arena.as_slice();
        // SAFETY: `validate_v2` proved each range in-bounds, 64-byte
        // aligned (so >= the element alignment; the arena base itself is
        // 64-byte aligned) and exactly `count * elem_size` long. On a
        // 64-bit little-endian target, `u64` file words are bit-identical
        // to `usize` memory words, and the structural checks above
        // established every invariant `Graph` requires.
        let graph = unsafe {
            let offsets = std::slice::from_raw_parts(
                buf.as_ptr().add(layout.offsets.start) as *const usize,
                layout.n + 1,
            );
            let neighbors = std::slice::from_raw_parts(
                buf.as_ptr().add(layout.neighbors.start) as *const NodeId,
                layout.arcs,
            );
            let degrees = std::slice::from_raw_parts(
                buf.as_ptr().add(layout.degrees.start) as *const u32,
                layout.n,
            );
            Graph::from_arena_parts(Arc::clone(&arena), offsets, neighbors, degrees)
        };
        Ok(graph)
    }
    #[cfg(not(all(target_pointer_width = "64", target_endian = "little")))]
    {
        // Portable fallback: decode into owned arrays.
        let buf = arena.as_slice();
        let offsets: Vec<usize> = (0..=layout.n)
            .map(|i| v2_u64(buf, layout.offsets.start + i * 8) as usize)
            .collect();
        let neighbors: Vec<NodeId> = (0..layout.arcs)
            .map(|i| v2_u32(buf, layout.neighbors.start + i * 4))
            .collect();
        Ok(Graph::from_csr(offsets, neighbors))
    }
}

/// Read a v2 snapshot from an open file into a fresh aligned arena
/// (one `read` syscall pass, then in-place section views).
fn load_v2_into_arena(mut f: File) -> Result<Graph, GraphError> {
    let len = f.metadata()?.len();
    let len = usize::try_from(len)
        .map_err(|_| GraphError::Format("file exceeds address space".into()))?;
    let mut arena = Arena::zeroed(len);
    f.read_exact(arena.as_mut_slice())?;
    read_binary_v2_from_arena(Arc::new(arena))
}

/// Load a v2 snapshot from a file path onto the heap-arena backend.
/// Unlike [`load_binary`] this does not accept v1 files — use it where a
/// zero-copy load is the point (e.g. the serving registry).
pub fn load_binary_v2<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    load_v2_into_arena(File::open(path)?)
}

/// Map a v2 snapshot read-only and view the CSR sections in place
/// (demand-paged; no read pass, no heap copy). Validation still touches
/// every byte once, which doubles as page warm-up. See the `mmap` caveats
/// in [`crate::storage`].
#[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
pub fn load_binary_mmap<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let f = File::open(path)?;
    let arena = Arena::map_file(&f)?;
    read_binary_v2_from_arena(Arc::new(arena))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::storage::StorageBackend;

    fn sample() -> Graph {
        graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_parser_skips_comments_and_blanks() {
        let text = "# header\n\n% another comment\n0 1\n  1   2  \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_parser_reports_line_numbers() {
        let text = "0 1\nnot_a_node 2\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_parser_requires_two_tokens() {
        let text = "0\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.backend(), StorageBackend::Owned);
    }

    #[test]
    fn binary_v2_roundtrip_via_reader() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_v2(&g, &mut buf).unwrap();
        // Sections are 64-byte aligned, so the file is too.
        assert_eq!(buf.len() % SECTION_ALIGN, 0);
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.backend(), StorageBackend::Arena);
        assert_eq!(g.fingerprint(), g2.fingerprint());
        assert!(g2.check_invariants().is_ok());
    }

    #[test]
    fn binary_v2_empty_graph_roundtrip() {
        for n in [0usize, 1, 7] {
            let g = Graph::empty(n);
            let mut buf = Vec::new();
            write_binary_v2(&g, &mut buf).unwrap();
            let g2 = read_binary(&buf[..]).unwrap();
            assert_eq!(g, g2);
            assert_eq!(g.fingerprint(), g2.fingerprint());
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC________".to_vec();
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::Format(_))));
    }

    #[test]
    fn binary_rejects_truncated_file() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_neighbor() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Overwrite the last neighbor id with an out-of-range value.
        let last = buf.len() - 4;
        buf[last..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hk_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        let txt = dir.join("g.txt");
        let bin = dir.join("g.bin");
        let bin2 = dir.join("g.hkg2");
        save_edge_list(&g, &txt).unwrap();
        save_binary(&g, &bin).unwrap();
        save_binary_v2(&g, &bin2).unwrap();
        assert_eq!(load_edge_list(&txt).unwrap(), g);
        assert_eq!(load_binary(&bin).unwrap(), g);
        // Auto-detect takes the arena path for v2 files…
        let v2 = load_binary(&bin2).unwrap();
        assert_eq!(v2, g);
        assert_eq!(v2.backend(), StorageBackend::Arena);
        // …and the explicit v2 loader rejects v1 files.
        assert!(matches!(load_binary_v2(&bin), Err(GraphError::Format(_))));
        assert_eq!(load_binary_v2(&bin2).unwrap(), g);
        #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
        {
            let m = load_binary_mmap(&bin2).unwrap();
            assert_eq!(m, g);
            assert_eq!(m.backend(), StorageBackend::Mmap);
            assert_eq!(m.fingerprint(), g.fingerprint());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn binary_roundtrip_arbitrary(edges in prop::collection::vec((0u32..60, 0u32..60), 0..200)) {
            let mut b = GraphBuilder::new();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            let g = b.build();
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            prop_assert_eq!(read_binary(&buf[..]).unwrap(), g);
        }

        #[test]
        fn binary_v2_roundtrip_arbitrary(edges in prop::collection::vec((0u32..60, 0u32..60), 0..200)) {
            let mut b = GraphBuilder::new();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            let g = b.build();
            let mut buf = Vec::new();
            write_binary_v2(&g, &mut buf).unwrap();
            let g2 = read_binary(&buf[..]).unwrap();
            prop_assert_eq!(&g2, &g);
            prop_assert_eq!(g2.fingerprint(), g.fingerprint());
            prop_assert!(g2.check_invariants().is_ok());
        }

        #[test]
        fn text_roundtrip_arbitrary(edges in prop::collection::vec((0u32..60, 0u32..60), 0..200)) {
            let mut b = GraphBuilder::new();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            let g = b.build();
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            let g2 = read_edge_list(&buf[..]).unwrap();
            // Text format drops trailing isolated nodes; compare edges.
            let e1: Vec<_> = g.edges().collect();
            let e2: Vec<_> = g2.edges().collect();
            prop_assert_eq!(e1, e2);
        }
    }
}

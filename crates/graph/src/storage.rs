//! Backing storage for [`crate::Graph`]'s CSR arrays.
//!
//! A graph's three arrays (`offsets: [usize]`, `neighbors: [u32]`,
//! `degrees: [u32]`) can live in one of two backends:
//!
//! * **Owned** — three independent heap allocations, exactly what
//!   [`crate::Graph::from_csr`] and [`crate::GraphBuilder`] have always
//!   produced. Building, generating and v1 loading use this backend.
//! * **Arena** — one contiguous 64-byte-aligned buffer holding a whole
//!   `.hkg` **v2** snapshot, with the CSR arrays read *in place* (the v2
//!   writer aligns every section to 64 bytes precisely so the loader can
//!   cast section bytes to typed slices without copying). The buffer is
//!   either an aligned heap allocation filled by one `read` pass, or —
//!   behind the `mmap` feature — a private file mapping, in which case
//!   loading a multi-gigabyte snapshot costs no physical memory until
//!   pages are touched and clean pages can be reclaimed under pressure.
//!
//! The backend is invisible to every `Graph` accessor: the hot paths
//! (`degree`, `neighbor_row`, the walk kernels' unchecked loads) read
//! through raw slice views resolved once at construction, so there is no
//! per-access branch on the backend — identical codegen to the old
//! three-`Box` layout.
//!
//! # mmap shim
//!
//! The build environment is fully offline, so instead of a `memmap2`
//! dependency the `mmap` feature enables a ~40-line shim over the raw
//! `mmap(2)`/`munmap(2)` C ABI (libc is already linked by `std` on every
//! unix target). The mapping is `PROT_READ | MAP_PRIVATE`; mutating the
//! file while a mapping is live is undefined at the OS level (a truncate
//! can raise `SIGBUS`), which is the standard mmap caveat — treat `.hkg`
//! snapshots as immutable once published.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;

/// Alignment of every v2 section — one cache line, and a multiple of
/// `align_of::<u64>()`, so in-place slice casts are always sound.
pub const SECTION_ALIGN: usize = 64;

/// Which backend a [`crate::Graph`]'s CSR arrays live in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageBackend {
    /// Three independent heap allocations (`Box<[_]>`).
    Owned,
    /// One aligned heap buffer holding a v2 snapshot, arrays read in place.
    Arena,
    /// A read-only file mapping of a v2 snapshot (zero-copy, demand-paged).
    #[cfg(feature = "mmap")]
    Mmap,
}

impl std::fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageBackend::Owned => f.write_str("owned"),
            StorageBackend::Arena => f.write_str("arena"),
            #[cfg(feature = "mmap")]
            StorageBackend::Mmap => f.write_str("mmap"),
        }
    }
}

enum ArenaKind {
    /// `alloc_zeroed` buffer with [`SECTION_ALIGN`] alignment.
    Heap { ptr: NonNull<u8>, len: usize },
    #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
    Mmap { ptr: NonNull<u8>, len: usize },
}

/// An immutable, 64-byte-aligned byte buffer that owns (or maps) a whole
/// v2 snapshot. `Graph` keeps one alive (via `Arc`) for as long as any
/// slice view into it exists.
pub struct Arena {
    kind: ArenaKind,
}

// SAFETY: the buffer is immutable after construction (the only `&mut`
// access is `as_mut_slice`, which requires exclusive ownership before the
// arena is shared) and freed exactly once in `Drop`.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl Arena {
    /// A zero-filled heap arena of `len` bytes, [`SECTION_ALIGN`]-aligned.
    pub fn zeroed(len: usize) -> Arena {
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (clamped below).
        let raw = unsafe { alloc_zeroed(layout) };
        let ptr = NonNull::new(raw).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        Arena {
            kind: ArenaKind::Heap { ptr, len },
        }
    }

    /// A heap arena holding a copy of `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Arena {
        let mut arena = Arena::zeroed(bytes.len());
        arena.as_mut_slice().copy_from_slice(bytes);
        arena
    }

    fn layout(len: usize) -> Layout {
        // Zero-size allocations are UB; a 1-byte arena keeps the pointer
        // real (an empty snapshot is rejected long before this anyway).
        Layout::from_size_align(len.max(1), SECTION_ALIGN).expect("arena layout")
    }

    /// The buffer contents.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.kind {
            ArenaKind::Heap { ptr, len } => {
                // SAFETY: `ptr` covers `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(ptr.as_ptr(), *len) }
            }
            #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
            ArenaKind::Mmap { ptr, len } => unsafe {
                std::slice::from_raw_parts(ptr.as_ptr(), *len)
            },
        }
    }

    /// Mutable access for filling a freshly allocated heap arena. Panics
    /// on a mapped arena (mappings are read-only).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        match &mut self.kind {
            ArenaKind::Heap { ptr, len } => {
                // SAFETY: exclusive `&mut self`, `ptr` covers `len` bytes.
                unsafe { std::slice::from_raw_parts_mut(ptr.as_ptr(), *len) }
            }
            #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
            ArenaKind::Mmap { .. } => panic!("mmap arenas are read-only"),
        }
    }

    /// Buffer length in bytes — what an arena-backed graph reports as its
    /// resident [`crate::Graph::memory_bytes`].
    #[inline]
    pub fn len(&self) -> usize {
        match &self.kind {
            ArenaKind::Heap { len, .. } => *len,
            #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
            ArenaKind::Mmap { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which backend this arena is.
    pub fn backend(&self) -> StorageBackend {
        match &self.kind {
            ArenaKind::Heap { .. } => StorageBackend::Arena,
            #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
            ArenaKind::Mmap { .. } => StorageBackend::Mmap,
        }
    }

    /// Map `file` read-only. The mapping is page-aligned (>= 4096 >=
    /// [`SECTION_ALIGN`]), so section casts stay sound.
    #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
    pub fn map_file(file: &std::fs::File) -> std::io::Result<Arena> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty file cannot be a snapshot.
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file exceeds address space",
            )
        })?;
        // SAFETY: valid fd, len > 0; a MAP_FAILED return is checked below.
        let raw = unsafe {
            mmap_sys::mmap(
                std::ptr::null_mut(),
                len,
                mmap_sys::PROT_READ,
                mmap_sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if raw == mmap_sys::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        let ptr = NonNull::new(raw.cast::<u8>()).expect("mmap returned null");
        Ok(Arena {
            kind: ArenaKind::Mmap { ptr, len },
        })
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        match &self.kind {
            ArenaKind::Heap { ptr, len } => {
                // SAFETY: allocated in `zeroed` with the identical layout.
                unsafe { dealloc(ptr.as_ptr(), Self::layout(*len)) }
            }
            #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
            ArenaKind::Mmap { ptr, len } => {
                // SAFETY: a live mapping established by `map_file`.
                unsafe {
                    mmap_sys::munmap(ptr.as_ptr().cast(), *len);
                }
            }
        }
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("backend", &self.backend())
            .field("len", &self.len())
            .finish()
    }
}

/// Raw `mmap(2)` / `munmap(2)` declarations — the vendored shim described
/// in the module docs. `std` already links libc on unix, so plain
/// `extern "C"` declarations suffice; the constants below hold on every
/// tier-1 unix target (Linux, macOS, the BSDs). Gated to 64-bit pointer
/// width: the declared `offset: i64` matches `off_t` there, while 32-bit
/// ABIs pass a 32-bit `off_t` (mismatched stack layout) — and those
/// targets take the owned-decode fallback anyway, so mapping buys
/// nothing.
#[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
mod mmap_sys {
    use std::ffi::c_void;
    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x02;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_arena_is_aligned_and_zeroed() {
        let arena = Arena::zeroed(1000);
        assert_eq!(arena.len(), 1000);
        assert!(!arena.is_empty());
        assert_eq!(arena.as_slice().as_ptr() as usize % SECTION_ALIGN, 0);
        assert!(arena.as_slice().iter().all(|&b| b == 0));
        assert_eq!(arena.backend(), StorageBackend::Arena);
    }

    #[test]
    fn from_bytes_copies() {
        let data: Vec<u8> = (0..200).map(|i| (i * 7) as u8).collect();
        let arena = Arena::from_bytes(&data);
        assert_eq!(arena.as_slice(), &data[..]);
    }

    #[test]
    fn mutation_before_sharing() {
        let mut arena = Arena::zeroed(16);
        arena.as_mut_slice()[3] = 0xAB;
        assert_eq!(arena.as_slice()[3], 0xAB);
    }

    #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
    #[test]
    fn mmap_roundtrip_and_empty_file() {
        let dir = std::env::temp_dir().join("hk_graph_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        let data: Vec<u8> = (0..4096 + 17).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let arena = Arena::map_file(&std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(arena.as_slice(), &data[..]);
        assert_eq!(arena.backend(), StorageBackend::Mmap);
        assert_eq!(arena.as_slice().as_ptr() as usize % SECTION_ALIGN, 0);

        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        assert!(Arena::map_file(&std::fs::File::open(&empty).unwrap()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Immutable compressed-sparse-row (CSR) graph.
//!
//! The HKPR algorithms in `hkpr-core` are *local*: their cost is dominated
//! by `neighbors(v)` scans and uniform neighbor sampling. CSR keeps each
//! adjacency list contiguous and sorted, which gives
//!
//! * O(1) `degree`, O(1) neighbor indexing (uniform sampling),
//! * O(log d(v)) `has_edge` via binary search (used by the sweep's
//!   incremental cut maintenance),
//! * two flat allocations for the whole graph.
//!
//! # Storage backends
//!
//! Since the v2 snapshot work the CSR arrays are *views over a storage
//! backend* ([`crate::storage`]): either three owned heap allocations
//! (builders, generators, v1 files) or a single aligned arena holding a
//! v2 snapshot read zero-copy (heap-read or mmap). The views are raw
//! slices resolved once at construction — every accessor below compiles
//! to the same loads as the old three-`Box` layout, with no per-access
//! branch on the backend. All backends satisfy the same invariants and
//! compare equal ([`PartialEq`] is over the array *contents*), and
//! [`Graph::fingerprint`] is backend-independent by construction.

use std::ptr::NonNull;
use std::sync::Arc;

use crate::storage::{Arena, StorageBackend};

/// Node identifier. Graphs are limited to `u32::MAX` nodes, which covers the
/// paper's largest dataset (Friendster, 65.6M nodes) with room to spare
/// while halving index memory relative to `usize`.
pub type NodeId = u32;

/// A raw, immutable view of `[T]` whose backing memory is owned by the
/// `Graph` that holds it (heap boxes or an arena kept alive by `Arc`).
/// Resolved once at construction so the hot accessors below stay
/// branch-free across backends.
struct RawSlice<T> {
    ptr: NonNull<T>,
    len: usize,
}

// Plain pointer+len pair; `Copy` keeps `Clone for Graph` trivial for the
// arena backend (same allocation, same views).
impl<T> Clone for RawSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for RawSlice<T> {}

impl<T> RawSlice<T> {
    fn of(s: &[T]) -> RawSlice<T> {
        RawSlice {
            // Slices are non-null even when empty.
            ptr: NonNull::from(s).cast(),
            len: s.len(),
        }
    }

    /// # Safety
    /// The backing allocation must be live and immutable; the caller
    /// (always `Graph`, which owns the storage) guarantees both.
    #[inline]
    unsafe fn get(&self) -> &[T] {
        std::slice::from_raw_parts(self.ptr.as_ptr(), self.len)
    }
}

/// What keeps a graph's array memory alive.
enum Storage {
    /// Three independent heap allocations (the historical layout).
    Owned {
        offsets: Box<[usize]>,
        neighbors: Box<[NodeId]>,
        degrees: Box<[u32]>,
    },
    /// One shared arena (a v2 snapshot); the views point into it.
    Arena(Arc<Arena>),
}

/// An undirected, unweighted graph in CSR form.
///
/// Invariants (maintained by [`crate::GraphBuilder`] and checked by the
/// property tests in this crate; the snapshot loaders validate the
/// memory-safety subset — monotone offsets, degree consistency, neighbor
/// range — and trust sortedness/symmetry from the writer, see
/// [`crate::io`]):
///
/// * `offsets.len() == num_nodes + 1`, `offsets[0] == 0`, monotone;
/// * `neighbors[offsets[v]..offsets[v+1]]` is strictly increasing
///   (no duplicate edges, no self-loops);
/// * adjacency is symmetric: `u ∈ neighbors(v) ⇔ v ∈ neighbors(u)`.
pub struct Graph {
    offsets: RawSlice<usize>,
    neighbors: RawSlice<NodeId>,
    /// Per-node degree, precomputed from `offsets`. Redundant 4 bytes per
    /// node that turn the hot `degree(v)` lookup (every push touches every
    /// neighbor's degree; every walk step samples one) into a single
    /// dense `u32` load instead of two adjacent `usize` loads — 4x more
    /// degrees per cache line.
    degrees: RawSlice<u32>,
    storage: Storage,
}

// SAFETY: a graph is immutable after construction; the raw views point
// into storage owned by the same struct (heap boxes or Arc<Arena>, both
// address-stable and Send + Sync themselves).
unsafe impl Send for Graph {}
unsafe impl Sync for Graph {}

impl Graph {
    /// Assemble an owned-backend graph from pre-built arrays. The boxes'
    /// heap blocks are address-stable under struct moves, so views taken
    /// here stay valid for the graph's lifetime.
    fn from_owned_parts(
        offsets: Box<[usize]>,
        neighbors: Box<[NodeId]>,
        degrees: Box<[u32]>,
    ) -> Self {
        Graph {
            offsets: RawSlice::of(&offsets),
            neighbors: RawSlice::of(&neighbors),
            degrees: RawSlice::of(&degrees),
            storage: Storage::Owned {
                offsets,
                neighbors,
                degrees,
            },
        }
    }

    /// Assemble an arena-backend graph from views into `arena`.
    ///
    /// # Safety
    /// The three slices must point into `arena`'s buffer, and the caller
    /// must have validated everything the unchecked accessors rely on:
    /// offsets monotone with `offsets[0] == 0` and
    /// `offsets[n] == neighbors.len()`, every neighbor id below `n`, and
    /// `degrees[v] == offsets[v+1] - offsets[v]` (the v2 loader does).
    pub(crate) unsafe fn from_arena_parts(
        arena: Arc<Arena>,
        offsets: &[usize],
        neighbors: &[NodeId],
        degrees: &[u32],
    ) -> Self {
        debug_assert_eq!(offsets.len(), degrees.len() + 1);
        Graph {
            offsets: RawSlice::of(offsets),
            neighbors: RawSlice::of(neighbors),
            degrees: RawSlice::of(degrees),
            storage: Storage::Arena(arena),
        }
    }

    /// Assemble a graph from raw CSR arrays (owned backend).
    ///
    /// `offsets` must have length `n + 1` with `offsets[0] == 0` and
    /// `offsets[n] == neighbors.len()`; adjacency lists must be sorted,
    /// self-loop-free and symmetric. [`crate::GraphBuilder`] produces
    /// conforming input; this constructor validates the cheap structural
    /// invariants and panics on violation (programmer error, not input
    /// error).
    pub fn from_csr(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(offsets[0], 0, "offsets[0] must be 0");
        assert_eq!(
            *offsets.last().unwrap(),
            neighbors.len(),
            "last offset must equal neighbor array length"
        );
        debug_assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        debug_assert_eq!(
            neighbors.len() % 2,
            0,
            "undirected graph must have even arc count"
        );
        let degrees = offsets
            .windows(2)
            .map(|w| u32::try_from(w[1] - w[0]).expect("degree exceeds u32"))
            .collect();
        Graph::from_owned_parts(
            offsets.into_boxed_slice(),
            neighbors.into_boxed_slice(),
            degrees,
        )
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph::from_owned_parts(
            vec![0; n + 1].into_boxed_slice(),
            Box::new([]),
            vec![0; n].into_boxed_slice(),
        )
    }

    /// The offsets array (`n + 1` entries).
    #[inline]
    fn offs(&self) -> &[usize] {
        // SAFETY: view into storage owned by `self` (see `RawSlice::get`).
        unsafe { self.offsets.get() }
    }

    /// The flat neighbor array (`2m` entries).
    #[inline]
    fn nbrs(&self) -> &[NodeId] {
        // SAFETY: as above.
        unsafe { self.neighbors.get() }
    }

    /// The dense degree array (`n` entries).
    #[inline]
    fn degs(&self) -> &[u32] {
        // SAFETY: as above.
        unsafe { self.degrees.get() }
    }

    /// Which storage backend holds this graph's arrays.
    pub fn backend(&self) -> StorageBackend {
        match &self.storage {
            Storage::Owned { .. } => StorageBackend::Owned,
            Storage::Arena(a) => a.backend(),
        }
    }

    /// Copy this graph onto the owned backend (a no-op copy for a graph
    /// that is already owned). Used to detach a graph from its arena —
    /// e.g. to outlive an unlinked snapshot file — and by the
    /// differential storage conformance suite.
    pub fn to_owned_backend(&self) -> Graph {
        Graph::from_owned_parts(self.offs().into(), self.nbrs().into(), self.degs().into())
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len / 2
    }

    /// Total volume `2m` (sum of all degrees).
    #[inline]
    pub fn volume(&self) -> usize {
        self.neighbors.len
    }

    /// Average degree `d̄ = 2m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.volume() as f64 / self.num_nodes() as f64
        }
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.degs()[v as usize] as usize
    }

    /// Degree of `v`, clamped to at least 1 — the denominator form every
    /// `r/d` normalization uses so isolated nodes never divide by zero.
    #[inline]
    pub fn degree_nz(&self, v: NodeId) -> usize {
        self.degree(v).max(1)
    }

    /// Sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        let offs = self.offs();
        &self.nbrs()[offs[v]..offs[v + 1]]
    }

    /// The `i`-th neighbor of `v` (`i < degree(v)`); O(1), used for uniform
    /// neighbor sampling in random walks.
    #[inline]
    pub fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        debug_assert!(i < self.degree(v));
        self.nbrs()[self.offs()[v as usize] + i]
    }

    /// Start of `v`'s adjacency row in the flat neighbor array, plus its
    /// degree, in one call. The two loads are adjacent `usize`s
    /// (`offsets[v]`, `offsets[v+1]`), so a random access usually costs a
    /// single cache line — the walk kernels carry the returned pair in
    /// registers instead of re-deriving it per step.
    #[inline]
    pub fn neighbor_row(&self, v: NodeId) -> (usize, u32) {
        let v = v as usize;
        let offs = self.offs();
        let start = offs[v];
        (start, (offs[v + 1] - start) as u32)
    }

    /// Read the flat neighbor array at `i` without a bounds check — the
    /// inner load of the lane walk kernel, whose index is proved in range
    /// by construction (`i = row_start + j` with `j < degree`, both from
    /// [`neighbor_row`](Self::neighbor_row)).
    ///
    /// # Safety
    /// `i` must be below `volume()` (the flat neighbor array's length).
    #[inline]
    pub unsafe fn neighbor_flat_unchecked(&self, i: usize) -> NodeId {
        debug_assert!(i < self.neighbors.len);
        *self.nbrs().get_unchecked(i)
    }

    /// [`neighbor_row`](Self::neighbor_row) without bounds checks — for
    /// node ids read *out of the CSR arrays themselves*, which the graph
    /// invariants guarantee are below `num_nodes()`.
    ///
    /// # Safety
    /// `v` must be below `num_nodes()`.
    #[inline]
    pub unsafe fn neighbor_row_unchecked(&self, v: NodeId) -> (usize, u32) {
        let v = v as usize;
        debug_assert!(v + 1 < self.offsets.len);
        let offs = self.offs();
        let start = *offs.get_unchecked(v);
        let end = *offs.get_unchecked(v + 1);
        (start, (end - start) as u32)
    }

    /// Hint the CPU to pull `v`'s offsets cache line (the input of the
    /// next [`neighbor_row`](Self::neighbor_row) call) into L1. Paired
    /// with [`prefetch_neighbor_row`](Self::prefetch_neighbor_row), this
    /// covers both random loads of a walk step.
    #[inline]
    pub fn prefetch_node(&self, v: NodeId) {
        #[cfg(target_arch = "x86_64")]
        if (v as usize) < self.offsets.len {
            // SAFETY: in-bounds pointer; prefetch has no other effect.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch::<_MM_HINT_T0>(self.offs().as_ptr().add(v as usize) as *const i8);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = v;
    }

    /// Hint the CPU to pull the cache line holding flat neighbor index
    /// `row_start` (the head of an adjacency row) into L1. The lane walk
    /// kernel issues this one step ahead of the row's use so the DRAM
    /// latency of the random access overlaps the other lanes' work. A
    /// no-op on architectures without a stable prefetch intrinsic, and
    /// for out-of-range indices (degree-0 rows point at the array end).
    #[inline]
    pub fn prefetch_neighbor_row(&self, row_start: usize) {
        #[cfg(target_arch = "x86_64")]
        if row_start < self.neighbors.len {
            // SAFETY: in-bounds pointer; prefetch has no other effect.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch::<_MM_HINT_T0>(self.nbrs().as_ptr().add(row_start) as *const i8);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = row_start;
    }

    /// Whether the undirected edge `{u, v}` exists. O(log min(d(u), d(v))).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Sum of degrees over a node set (the set's *volume*).
    pub fn set_volume(&self, nodes: &[NodeId]) -> usize {
        nodes.iter().map(|&v| self.degree(v)).sum()
    }

    /// Approximate resident memory of the CSR storage in bytes (used by
    /// the Figure 5 memory experiment to separate graph storage from
    /// per-query working memory, and by the serving registry's
    /// resident-byte budget). For the owned backend this is the three
    /// arrays; for an arena it is the whole snapshot buffer (header and
    /// padding included — they are resident too).
    pub fn memory_bytes(&self) -> usize {
        match &self.storage {
            Storage::Owned {
                offsets,
                neighbors,
                degrees,
            } => {
                offsets.len() * std::mem::size_of::<usize>()
                    + neighbors.len() * std::mem::size_of::<NodeId>()
                    + degrees.len() * std::mem::size_of::<u32>()
            }
            Storage::Arena(a) => a.len(),
        }
    }

    /// Maximum degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Node with the maximum degree (`None` for an empty graph). Ties break
    /// toward the smaller id. Used by the "interactive exploration" example
    /// to pick a celebrity-like seed.
    pub fn max_degree_node(&self) -> Option<NodeId> {
        self.nodes()
            .max_by_key(|&v| (self.degree(v), std::cmp::Reverse(v)))
    }

    /// A 64-bit structural fingerprint of the graph: an FNV-1a-style hash
    /// over `n`, the arc count and the full CSR arrays. Two graphs have
    /// equal fingerprints iff (modulo 64-bit collisions) they are the same
    /// graph, because CSR is a canonical form — adjacency lists are
    /// sorted, so build order cannot perturb the bytes. The hash reads the
    /// arrays through the accessor views, so it is also independent of the
    /// storage backend (property-tested by the conformance suite).
    ///
    /// Serving layers key result caches on this value so entries cached
    /// against one graph can never be served for another (`hk-serve`'s
    /// cache key includes it) — which is also what lets a multi-graph
    /// registry evict and reload a snapshot without invalidating cached
    /// results. O(n + m) per call; callers that need it repeatedly (the
    /// engine) compute it once at bind time.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        #[inline]
        fn mix(h: u64, x: u64) -> u64 {
            // FNV-1a over the 8 bytes of x, one u64 round: xor-fold then
            // multiply twice to diffuse the high bytes too.
            let h = (h ^ x).wrapping_mul(PRIME);
            (h ^ (x >> 32)).wrapping_mul(PRIME)
        }
        let mut h = mix(OFFSET, self.num_nodes() as u64);
        h = mix(h, self.neighbors.len as u64);
        for &off in self.offs().iter() {
            h = mix(h, off as u64);
        }
        // Pack neighbor ids two-per-round.
        let mut chunks = self.nbrs().chunks_exact(2);
        for pair in &mut chunks {
            h = mix(h, (pair[0] as u64) << 32 | pair[1] as u64);
        }
        for &v in chunks.remainder() {
            h = mix(h, v as u64);
        }
        h
    }

    /// Validate the full CSR invariant set (sortedness, symmetry, loop
    /// freedom). O(m log d); intended for tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if *self.offs().last().unwrap() != self.neighbors.len {
            return Err("offset/neighbor length mismatch".into());
        }
        if self.degrees.len + 1 != self.offsets.len {
            return Err("degree/offset length mismatch".into());
        }
        for v in self.nodes() {
            if self.degree(v) != self.offs()[v as usize + 1] - self.offs()[v as usize] {
                return Err(format!("degree of {v} disagrees with offsets"));
            }
            let adj = self.neighbors(v);
            if !adj.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {v} not strictly sorted"));
            }
            if adj.binary_search(&v).is_ok() {
                return Err(format!("self-loop at {v}"));
            }
            for &u in adj {
                if u as usize >= self.num_nodes() {
                    return Err(format!("neighbor {u} of {v} out of range"));
                }
                if self.neighbors(u).binary_search(&v).is_err() {
                    return Err(format!("edge {v}->{u} not symmetric"));
                }
            }
        }
        Ok(())
    }
}

impl Clone for Graph {
    fn clone(&self) -> Graph {
        match &self.storage {
            // Owned: deep-copy the arrays (the historical `derive` did).
            Storage::Owned { .. } => self.to_owned_backend(),
            // Arena: share the buffer; the views stay valid because they
            // point into the same (Arc-pinned) allocation.
            Storage::Arena(a) => Graph {
                offsets: self.offsets,
                neighbors: self.neighbors,
                degrees: self.degrees,
                storage: Storage::Arena(Arc::clone(a)),
            },
        }
    }
}

/// Structural equality over the CSR *contents* — deliberately
/// backend-blind, so an arena load of a snapshot compares equal to the
/// owned graph it was written from.
impl PartialEq for Graph {
    fn eq(&self, other: &Graph) -> bool {
        self.offs() == other.offs() && self.nbrs() == other.nbrs()
    }
}
impl Eq for Graph {}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .field("backend", &self.backend())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 2-0, 2-3
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.volume(), 8);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.max_degree_node(), Some(2));
    }

    #[test]
    fn neighbors_sorted_and_indexed() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbor_at(2, 0), 0);
        assert_eq!(g.neighbor_at(2, 2), 3);
    }

    #[test]
    fn neighbor_row_matches_per_node_accessors() {
        let g = triangle_plus_tail();
        for v in g.nodes() {
            let (start, deg) = g.neighbor_row(v);
            assert_eq!(deg as usize, g.degree(v));
            assert_eq!(unsafe { g.neighbor_row_unchecked(v) }, (start, deg));
            for i in 0..deg as usize {
                assert_eq!(
                    unsafe { g.neighbor_flat_unchecked(start + i) },
                    g.neighbor_at(v, i)
                );
            }
            // Prefetching any valid row start (or the end sentinel of a
            // trailing degree-0 node) must be a safe no-op.
            g.prefetch_neighbor_row(start);
            g.prefetch_node(v);
        }
        g.prefetch_neighbor_row(g.volume());
    }

    #[test]
    fn has_edge_both_directions_and_no_loop() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn edge_iterator_yields_canonical_pairs() {
        let g = triangle_plus_tail();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn set_volume_sums_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.set_volume(&[0, 2]), 2 + 3);
        assert_eq!(g.set_volume(&[]), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.max_degree_node(), Some(0));
        assert!(Graph::empty(0).max_degree_node().is_none());
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn invariants_hold_for_builder_output() {
        let g = triangle_plus_tail();
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn invariant_checker_catches_asymmetry() {
        // 0 -> 1 exists but 1 -> 0 missing.
        let g = Graph::from_csr(vec![0, 1, 2], vec![1, 0]);
        assert!(g.check_invariants().is_ok());
        let bad = Graph::from_csr(vec![0, 1, 2, 2, 2], vec![1, 2]);
        assert!(bad.check_invariants().is_err());
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle_plus_tail();
        assert!(g.memory_bytes() >= 8 * std::mem::size_of::<NodeId>());
    }

    #[test]
    fn owned_backend_reported_and_clone_is_deep_equal() {
        let g = triangle_plus_tail();
        assert_eq!(g.backend(), StorageBackend::Owned);
        let c = g.clone();
        assert_eq!(g, c);
        assert_eq!(c.backend(), StorageBackend::Owned);
        let o = g.to_owned_backend();
        assert_eq!(g, o);
        assert_eq!(g.fingerprint(), o.fingerprint());
    }

    #[test]
    fn graph_moves_keep_views_valid() {
        // Views are raw pointers into heap storage; moving the Graph
        // struct (Vec reallocation, Box, etc.) must not disturb them.
        let graphs: Vec<Graph> = (0..32).map(|_| triangle_plus_tail()).collect();
        let boxed: Vec<Box<Graph>> = graphs.into_iter().map(Box::new).collect();
        for g in &boxed {
            assert_eq!(g.neighbors(2), &[0, 1, 3]);
            assert!(g.check_invariants().is_ok());
        }
    }

    #[test]
    fn fingerprint_is_structural() {
        let g = triangle_plus_tail();
        // Stable across calls and across clones.
        assert_eq!(g.fingerprint(), g.fingerprint());
        assert_eq!(g.fingerprint(), g.clone().fingerprint());
        // Build order cannot matter: CSR is canonical.
        let mut b = GraphBuilder::new();
        for (u, v) in [(2, 3), (2, 0), (1, 2), (0, 1)] {
            b.add_edge(u, v);
        }
        assert_eq!(b.build().fingerprint(), g.fingerprint());
        // Any structural change changes the fingerprint.
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            b.add_edge(u, v);
        }
        assert_ne!(b.build().fingerprint(), g.fingerprint());
        // Isolated trailing nodes are part of the structure.
        assert_ne!(Graph::empty(4).fingerprint(), Graph::empty(5).fingerprint());
    }
}

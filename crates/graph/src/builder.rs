//! Edge-list ingestion and CSR assembly.

use crate::csr::{Graph, NodeId};

/// Accumulates an undirected edge list and assembles a [`Graph`].
///
/// The builder is tolerant by design — real-world edge lists (SNAP dumps,
/// generator output) contain duplicates, self-loops and both orientations of
/// the same edge. [`GraphBuilder::build`] canonicalizes: self-loops are
/// dropped, parallel edges are collapsed, adjacency lists come out sorted
/// and symmetric.
///
/// ```
/// use hk_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(1, 0);
/// b.add_edge(0, 1); // duplicate (reversed)
/// b.add_edge(1, 1); // self-loop
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// assert_eq!(g.num_nodes(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId)>,
    min_nodes: usize,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// New builder with capacity for `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(m),
            min_nodes: 0,
        }
    }

    /// Force the built graph to contain at least `n` nodes even if the tail
    /// ids never appear in an edge (isolated nodes).
    pub fn ensure_nodes(&mut self, n: usize) {
        self.min_nodes = self.min_nodes.max(n);
    }

    /// Record the undirected edge `{u, v}`. Self-loops and duplicates are
    /// accepted here and removed during [`build`](Self::build).
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        // Canonical orientation keeps dedup a plain sort + dedup.
        self.edges.push(if u <= v { (u, v) } else { (v, u) });
    }

    /// Number of raw (pre-dedup) edge records currently stored.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Assemble the CSR graph: drop self-loops, dedup, symmetrize, sort.
    /// O(m log m) time, two passes of O(n + m) assembly.
    pub fn build(mut self) -> Graph {
        self.edges.retain(|&(u, v)| u != v);
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self
            .edges
            .iter()
            .map(|&(_, v)| v as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_nodes);

        // Counting pass: degree of every node.
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        // Placement pass. `cursor` tracks the next free slot per node.
        let mut neighbors = vec![0 as NodeId; self.edges.len() * 2];
        let mut cursor = offsets.clone();
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }

        // Edges were globally sorted by (u, v), so each u's out-list is
        // already sorted; the reverse arcs (v -> u) arrive in increasing u
        // as well, but the two interleave, so sort each list. Lists are
        // short on average; this is O(m log dmax) worst case.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }

        Graph::from_csr(offsets, neighbors)
    }
}

/// Convenience: build a graph straight from an iterator of edges.
pub fn graph_from_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(edges: I) -> Graph {
    let mut b = GraphBuilder::new();
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_loop_removal() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn ensure_nodes_creates_isolated_tail() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_nodes(10);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn from_edges_helper() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn raw_count_tracks_inserts() {
        let mut b = GraphBuilder::with_capacity(4);
        assert_eq!(b.raw_edge_count(), 0);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.raw_edge_count(), 2);
    }

    #[test]
    fn adjacency_sorted_even_with_unsorted_input() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(5, 2), (5, 9), (5, 1), (5, 7), (5, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        assert_eq!(g.neighbors(5), &[1, 2, 3, 7, 9]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any edge soup builds a graph satisfying the full CSR invariants.
        #[test]
        fn builder_output_always_valid(edges in prop::collection::vec((0u32..200, 0u32..200), 0..400)) {
            let mut b = GraphBuilder::new();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            let g = b.build();
            prop_assert!(g.check_invariants().is_ok());
        }

        /// Building is idempotent: rebuilding from the built graph's edges
        /// reproduces the same graph.
        #[test]
        fn rebuild_roundtrip(edges in prop::collection::vec((0u32..100, 0u32..100), 0..300)) {
            let mut b = GraphBuilder::new();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            let g1 = b.build();
            let mut b2 = GraphBuilder::new();
            b2.ensure_nodes(g1.num_nodes());
            for (u, v) in g1.edges() {
                b2.add_edge(u, v);
            }
            let g2 = b2.build();
            prop_assert_eq!(g1, g2);
        }

        /// Volume is exactly twice the edge count and degrees sum to it.
        #[test]
        fn volume_identity(edges in prop::collection::vec((0u32..80, 0u32..80), 0..200)) {
            let mut b = GraphBuilder::new();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            let g = b.build();
            let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, g.volume());
            prop_assert_eq!(g.volume(), 2 * g.num_edges());
        }
    }
}

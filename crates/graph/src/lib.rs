#![warn(missing_docs)]

//! # hk-graph
//!
//! Graph substrate for the TEA / TEA+ heat-kernel-PageRank reproduction
//! (Yang et al., *Efficient Estimation of Heat Kernel PageRank for Local
//! Clustering*, SIGMOD 2019).
//!
//! The paper's algorithms operate on undirected, unweighted graphs accessed
//! through three primitives: `degree(v)`, `neighbors(v)` and global counts
//! `n`/`m`. This crate provides:
//!
//! * [`Graph`] — an immutable compressed-sparse-row (CSR) representation
//!   with sorted adjacency lists (O(log d) edge tests, cache-friendly
//!   neighborhood scans);
//! * [`GraphBuilder`] — edge-list ingestion with de-duplication and
//!   self-loop removal;
//! * [`gen`] — the synthetic generators used by the paper's evaluation
//!   (Holme–Kim "PLC", 3D grid) plus standard families (Erdős–Rényi,
//!   Barabási–Albert, Chung–Lu, planted partition with ground-truth
//!   communities) used as stand-ins for the SNAP datasets;
//! * [`io`] — text edge-list serialization plus two binary snapshot
//!   formats: streaming v1 and the 64-byte-aligned, checksummed v2 that
//!   loads zero-copy into an arena (or an mmap behind the `mmap`
//!   feature) — see [`storage`];
//! * [`storage`] — the backing-storage layer ([`StorageBackend`]):
//!   owned heap arrays or a shared aligned arena;
//! * [`components`], [`metrics`], [`sample`] — experiment plumbing
//!   (connected components, subgraph density, seed selection).
//!
//! ## Example
//!
//! ```
//! use hk_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.degree(0), 2);
//! assert!(g.has_edge(0, 2));
//! ```

pub mod builder;
pub mod components;
pub mod csr;
pub mod error;
pub mod gen;
pub mod io;
pub mod metrics;
pub mod partition;
pub mod sample;
pub mod storage;

pub use builder::GraphBuilder;
pub use csr::{Graph, NodeId};
pub use error::GraphError;
pub use partition::NodePartition;
pub use storage::StorageBackend;

//! Seed-node selection for experiments.
//!
//! The paper's workloads draw 50 uniform seeds per dataset (§7.1), seeds
//! from ground-truth communities of size ≥ 100 (§7.6), and seeds from
//! density-ranked subgraphs (§7.7). These helpers reproduce those query
//! sets deterministically from a seed.

use rand::{Rng, RngExt};

use crate::components::bfs_ball;
use crate::csr::{Graph, NodeId};
use crate::metrics::subgraph_density;

/// `count` distinct nodes drawn uniformly among nodes with degree at least
/// `min_degree`. Returns fewer if the graph does not contain enough
/// qualifying nodes.
pub fn random_nodes<R: Rng>(
    graph: &Graph,
    count: usize,
    min_degree: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let eligible: Vec<NodeId> = graph
        .nodes()
        .filter(|&v| graph.degree(v) >= min_degree)
        .collect();
    if eligible.is_empty() {
        return Vec::new();
    }
    if eligible.len() <= count {
        return eligible;
    }
    // Partial Fisher–Yates over a copy of the eligible list.
    let mut pool = eligible;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
        out.push(pool[i]);
    }
    out
}

/// Seed sets stratified by the density of the subgraph each seed was drawn
/// from (the §7.7 protocol: rank sampled subgraphs by density, then take
/// seeds from the top, middle and bottom quintiles).
#[derive(Clone, Debug)]
pub struct DensitySeeds {
    /// Seeds from the densest subgraphs.
    pub high: Vec<NodeId>,
    /// Seeds from median-density subgraphs.
    pub medium: Vec<NodeId>,
    /// Seeds from the sparsest subgraphs.
    pub low: Vec<NodeId>,
}

/// Reproduce the §7.7 protocol: sample `num_subgraphs` BFS balls of
/// `subgraph_size` nodes from random starts, rank them by density
/// (descending), then draw one seed from each of the first / middle / last
/// `per_class` subgraphs.
pub fn density_stratified_seeds<R: Rng>(
    graph: &Graph,
    num_subgraphs: usize,
    subgraph_size: usize,
    per_class: usize,
    rng: &mut R,
) -> DensitySeeds {
    assert!(
        num_subgraphs >= 3 * per_class,
        "need at least 3*per_class subgraphs"
    );
    let n = graph.num_nodes();
    assert!(n > 0, "empty graph");

    // (density, members) per sampled subgraph.
    let mut ranked: Vec<(f64, Vec<NodeId>)> = Vec::with_capacity(num_subgraphs);
    for _ in 0..num_subgraphs {
        let start = rng.random_range(0..n) as NodeId;
        let ball = bfs_ball(graph, start, subgraph_size);
        let density = subgraph_density(graph, &ball);
        ranked.push((density, ball));
    }
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let pick = |ranked: &[(f64, Vec<NodeId>)], range: std::ops::Range<usize>, rng: &mut R| {
        range
            .map(|i| {
                let members = &ranked[i].1;
                members[rng.random_range(0..members.len())]
            })
            .collect::<Vec<_>>()
    };

    let mid_start = num_subgraphs / 2 - per_class / 2;
    DensitySeeds {
        high: pick(&ranked, 0..per_class, rng),
        medium: pick(&ranked, mid_start..mid_start + per_class, rng),
        low: pick(&ranked, num_subgraphs - per_class..num_subgraphs, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::gen::{erdos_renyi_gnm, planted_partition};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_nodes_distinct_and_degree_filtered() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(200, 400, &mut rng).unwrap();
        let seeds = random_nodes(&g, 30, 2, &mut rng);
        assert_eq!(seeds.len(), 30);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "seeds must be distinct");
        assert!(seeds.iter().all(|&v| g.degree(v) >= 2));
    }

    #[test]
    fn random_nodes_returns_all_when_short() {
        let g = graph_from_edges([(0, 1), (1, 2)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let seeds = random_nodes(&g, 10, 1, &mut rng);
        assert_eq!(seeds.len(), 3);
        let seeds = random_nodes(&g, 10, 5, &mut rng);
        assert!(seeds.is_empty());
    }

    #[test]
    fn density_stratified_orders_high_above_low() {
        // Planted partition: dense blocks + sparse background means BFS
        // balls around block cores are denser than average.
        let mut rng = SmallRng::seed_from_u64(3);
        let pp = planted_partition(8, 64, 0.25, 0.002, &mut rng).unwrap();
        let seeds = density_stratified_seeds(&pp.graph, 60, 40, 10, &mut rng);
        assert_eq!(seeds.high.len(), 10);
        assert_eq!(seeds.medium.len(), 10);
        assert_eq!(seeds.low.len(), 10);
        // All seeds are valid node ids.
        let n = pp.graph.num_nodes() as NodeId;
        for v in seeds.high.iter().chain(&seeds.medium).chain(&seeds.low) {
            assert!(*v < n);
        }
    }

    #[test]
    #[should_panic(expected = "3*per_class")]
    fn density_stratified_rejects_too_few_subgraphs() {
        let g = graph_from_edges([(0, 1)]);
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = density_stratified_seeds(&g, 5, 2, 2, &mut rng);
    }
}

//! `SimpleLocal` (Veldt, Gleich & Mahoney, ICML 2016) — flow-based cut
//! improvement, one of the paper's §7.4 competitors.
//!
//! Given a reference set `R`, SimpleLocal repeatedly solves an s-t min-cut
//! on an augmented graph to find a set `S` with smaller conductance,
//! allowing `S` to deviate from `R` at a locality penalty `delta`:
//!
//! * source `s -> v` with capacity `alpha * d(v)` for `v in R`;
//! * `v -> t` with capacity `alpha * eps * d(v)` for `v not in R`, where
//!   `eps = 1/delta` scales the penalty for leaving the reference set;
//! * original edges with capacity 1 in both directions.
//!
//! Each round sets `alpha` to the best conductance seen; the iteration is
//! monotone and terminates when no strictly better cut exists. The SIGMOD
//! paper observes (and Figure 4 reproduces) that SimpleLocal "incurs very
//! high running time as well as poor cluster quality" for single-seed
//! queries — it was designed for seed *sets*.

use hk_graph::{Graph, NodeId};

use crate::dinic::FlowNetwork;
use crate::util::conductance_members;

/// Result of a SimpleLocal run.
#[derive(Clone, Debug)]
pub struct SimpleLocalResult {
    /// The improved cluster (ascending node ids).
    pub cluster: Vec<NodeId>,
    /// Its conductance.
    pub conductance: f64,
    /// Number of max-flow solves performed.
    pub flow_calls: u32,
}

/// Run SimpleLocal from a reference set `r_set` with locality parameter
/// `delta > 0` (the knob the paper sweeps in {0.005 … 0.1}; smaller values
/// permit more deviation from `R`).
///
/// # Panics
/// Panics if `r_set` is empty or contains out-of-range nodes.
pub fn simple_local(graph: &Graph, r_set: &[NodeId], delta: f64) -> SimpleLocalResult {
    assert!(!r_set.is_empty(), "reference set must be non-empty");
    assert!(delta > 0.0, "delta must be positive");
    let n = graph.num_nodes();
    let mut in_r = vec![false; n];
    for &v in r_set {
        assert!((v as usize) < n, "reference node {v} out of range");
        in_r[v as usize] = true;
    }

    let eps = 1.0 / delta;
    let mut best_members = in_r.clone();
    let mut alpha = conductance_members(graph, &best_members);
    let mut flow_calls = 0u32;

    // Strictly decreasing alpha guarantees termination; cap rounds as a
    // safety net against floating-point ping-pong.
    for _ in 0..64 {
        let source = n as u32;
        let sink = n as u32 + 1;
        let mut net = FlowNetwork::new(n + 2);
        for v in graph.nodes() {
            let d = graph.degree(v) as f64;
            if in_r[v as usize] {
                net.add_edge(source, v, alpha * d, 0.0);
            } else {
                net.add_edge(v, sink, alpha * eps * d, 0.0);
            }
            for &u in graph.neighbors(v) {
                if u > v {
                    net.add_edge(v, u, 1.0, 1.0);
                }
            }
        }
        net.max_flow(source, sink);
        flow_calls += 1;
        let side = net.min_cut_side(source);
        let members: Vec<bool> = (0..n).map(|v| side[v]).collect();
        if !members.iter().any(|&b| b) {
            break; // cut collapsed to the empty set: no improvement
        }
        let phi = conductance_members(graph, &members);
        if phi < alpha - 1e-12 {
            alpha = phi;
            best_members = members;
        } else {
            break;
        }
    }

    let cluster: Vec<NodeId> = (0..n as u32)
        .filter(|&v| best_members[v as usize])
        .collect();
    SimpleLocalResult {
        cluster,
        conductance: alpha,
        flow_calls,
    }
}

/// Single-seed convenience wrapper: grow a BFS ball of `ball_size` nodes
/// around `seed` as the reference set, then run [`simple_local`]. This is
/// how the harness adapts the seed-set method to the paper's single-seed
/// workload.
pub fn simple_local_from_seed(
    graph: &Graph,
    seed: NodeId,
    ball_size: usize,
    delta: f64,
) -> SimpleLocalResult {
    let ball = hk_graph::components::bfs_ball(graph, seed, ball_size.max(1));
    simple_local(graph, &ball, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_graph::builder::graph_from_edges;
    use hk_graph::gen::planted_partition;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Two 4-cliques plus bridge.
    fn two_cliques() -> Graph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
            (3, 4),
        ])
    }

    #[test]
    fn improves_a_noisy_reference_set() {
        let g = two_cliques();
        // Reference set straddles the cut: {2, 3, 4}.
        let res = simple_local(&g, &[2, 3, 4], 0.05);
        // Must not be worse than the reference set's conductance.
        let mut members = vec![false; g.num_nodes()];
        for &v in &[2u32, 3, 4] {
            members[v as usize] = true;
        }
        assert!(res.conductance <= conductance_members(&g, &members) + 1e-12);
        assert!(res.flow_calls >= 1);
    }

    #[test]
    fn keeps_a_perfect_reference_set() {
        let g = two_cliques();
        let res = simple_local(&g, &[0, 1, 2, 3], 0.05);
        assert_eq!(res.cluster, vec![0, 1, 2, 3]);
        assert!((res.conductance - 1.0 / 13.0).abs() < 1e-9);
    }

    #[test]
    fn seed_wrapper_recovers_planted_block() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pp = planted_partition(3, 30, 0.4, 0.01, &mut rng).unwrap();
        let res = simple_local_from_seed(&pp.graph, 0, 25, 0.05);
        // The recovered cluster should overlap block 0 (nodes 0..30)
        // heavily.
        let inside = res.cluster.iter().filter(|&&v| v < 30).count();
        assert!(
            inside * 2 > res.cluster.len(),
            "cluster drifted off the seed block"
        );
        assert!(res.conductance < 0.4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_reference() {
        let g = two_cliques();
        let _ = simple_local(&g, &[], 0.05);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_reference_node() {
        let g = two_cliques();
        let _ = simple_local(&g, &[99], 0.05);
    }
}

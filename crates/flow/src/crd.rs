//! Capacity Releasing Diffusion — `CRD` (Wang, Fountoulakis, Henzinger,
//! Mahoney, Rao; ICML 2017), the second flow-based §7.4 competitor.
//!
//! CRD spreads *mass* from the seed with a push-relabel process
//! (`Unit-Flow`): every node can absorb mass up to its degree, every edge
//! carries at most `u_cap` units per round, and mass that cannot settle
//! climbs a label tower of height `h`. The outer loop doubles the surviving
//! mass each round ("releasing capacity"), so the diffusion floods a
//! well-connected region but is throttled at bottleneck cuts — excess
//! stuck at the top of the tower is the signal to stop. The cluster is a
//! sweep over settled mass per degree.
//!
//! The paper varies CRD's iteration count in {7, 10, 15, 20, 30} and keeps
//! the other knobs at defaults; [`CrdParams::default`] mirrors that.

use hk_graph::{Graph, NodeId};
use rand::Rng;

use crate::util::sweep_by_score;

/// Tuning knobs of CRD.
#[derive(Clone, Copy, Debug)]
pub struct CrdParams {
    /// Per-edge flow capacity `U` in each Unit-Flow round.
    pub u_cap: f64,
    /// Label-tower height `h`.
    pub h: usize,
    /// Maximum number of mass-doubling rounds (the knob §7.4 sweeps).
    pub iterations: usize,
    /// Stop when more than this fraction of the mass is stuck at height
    /// `h` after a round.
    pub excess_tolerance: f64,
}

impl Default for CrdParams {
    fn default() -> Self {
        CrdParams {
            u_cap: 3.0,
            h: 40,
            iterations: 15,
            excess_tolerance: 0.1,
        }
    }
}

/// Result of a CRD run.
#[derive(Clone, Debug)]
pub struct CrdResult {
    /// Sweep cluster over settled mass (ascending node ids).
    pub cluster: Vec<NodeId>,
    /// Its conductance.
    pub conductance: f64,
    /// Push/relabel operations performed (work measure).
    pub operations: u64,
    /// Rounds completed before the excess test stopped the diffusion.
    pub rounds: usize,
}

/// Run CRD from `seed`. The RNG only breaks push ties (which neighbor
/// receives mass first), keeping runs reproducible under a fixed seed.
pub fn crd<R: Rng>(graph: &Graph, seed: NodeId, params: &CrdParams, rng: &mut R) -> CrdResult {
    let _ = rng; // tie-breaking currently deterministic; kept for API stability
    assert!((seed as usize) < graph.num_nodes(), "seed out of range");
    assert!(params.u_cap > 0.0 && params.h >= 1 && params.iterations >= 1);

    let n = graph.num_nodes();
    let mut mass = vec![0.0f64; n];
    let mut touched: Vec<NodeId> = vec![seed];
    let mut is_touched = vec![false; n];
    is_touched[seed as usize] = true;
    mass[seed as usize] = 2.0 * graph.degree(seed).max(1) as f64;

    let mut operations = 0u64;
    let mut rounds = 0usize;

    for _round in 0..params.iterations {
        rounds += 1;
        let stuck = unit_flow(
            graph,
            params,
            &mut mass,
            &mut touched,
            &mut is_touched,
            &mut operations,
        );
        let total: f64 = touched.iter().map(|&v| mass[v as usize]).sum();
        if total > 0.0 && stuck / total > params.excess_tolerance {
            break; // diffusion hit the cluster boundary
        }
        // Release capacity: double all surviving mass.
        for &v in &touched {
            mass[v as usize] *= 2.0;
        }
    }

    let scored: Vec<(NodeId, f64)> = touched
        .iter()
        .filter(|&&v| mass[v as usize] > 0.0 && graph.degree(v) > 0)
        .map(|&v| (v, mass[v as usize] / graph.degree(v) as f64))
        .collect();
    let (cluster, conductance) = sweep_by_score(graph, &scored);
    if cluster.is_empty() {
        return CrdResult {
            cluster: vec![seed],
            conductance: 1.0,
            operations,
            rounds,
        };
    }
    CrdResult {
        cluster,
        conductance,
        operations,
        rounds,
    }
}

/// One Unit-Flow round: push-relabel until no node has pushable excess.
/// Returns the amount of mass stuck at the top of the label tower.
fn unit_flow(
    graph: &Graph,
    params: &CrdParams,
    mass: &mut [f64],
    touched: &mut Vec<NodeId>,
    is_touched: &mut [bool],
    operations: &mut u64,
) -> f64 {
    const EPS: f64 = 1e-12;
    let h = params.h;

    // Labels and per-round edge flows are sparse (only the touched region).
    let mut label: std::collections::HashMap<u32, u32> = Default::default();
    let mut flow: std::collections::HashMap<(u32, u32), f64> = Default::default();

    // Active = excess above degree and label < h.
    let excess = |mass: &[f64], v: NodeId, graph: &Graph| -> f64 {
        (mass[v as usize] - graph.degree(v).max(1) as f64).max(0.0)
    };
    let mut active: Vec<NodeId> = touched
        .iter()
        .copied()
        .filter(|&v| excess(mass, v, graph) > EPS)
        .collect();

    while let Some(v) = active.pop() {
        let lv = *label.get(&v).unwrap_or(&0);
        if lv >= h as u32 {
            continue;
        }
        let mut ex = excess(mass, v, graph);
        if ex <= EPS {
            continue;
        }
        let mut pushed_any = false;
        for &u in graph.neighbors(v) {
            if ex <= EPS {
                break;
            }
            let lu = *label.get(&u).unwrap_or(&0);
            if lv != lu + 1 {
                continue;
            }
            let key = flow_key(v, u);
            let f = *flow.get(&key).unwrap_or(&0.0);
            let signed = if v < u { f } else { -f };
            let residual = params.u_cap - signed;
            if residual <= EPS {
                continue;
            }
            // Receiver capacity: up to degree (sink) plus u_cap of excess
            // headroom per the Unit-Flow invariant m(u) <= d(u) + U.
            let headroom =
                (graph.degree(u).max(1) as f64 + params.u_cap - mass[u as usize]).max(0.0);
            let amount = ex.min(residual).min(headroom);
            if amount <= EPS {
                continue;
            }
            mass[v as usize] -= amount;
            mass[u as usize] += amount;
            *flow.entry(key).or_insert(0.0) += if v < u { amount } else { -amount };
            *operations += 1;
            ex -= amount;
            pushed_any = true;
            if !is_touched[u as usize] {
                is_touched[u as usize] = true;
                touched.push(u);
            }
            if excess(mass, u, graph) > EPS && (*label.get(&u).unwrap_or(&0) as usize) < h {
                active.push(u);
            }
        }
        if ex > EPS {
            if pushed_any {
                active.push(v); // keep draining at the same label
            } else {
                // Relabel.
                let new_label = lv + 1;
                label.insert(v, new_label);
                *operations += 1;
                if (new_label as usize) < h {
                    active.push(v);
                }
            }
        }
    }

    // Mass stuck: excess on nodes whose label reached h.
    touched
        .iter()
        .filter(|&&v| *label.get(&v).unwrap_or(&0) as usize >= h)
        .map(|&v| excess(mass, v, graph))
        .sum()
}

#[inline]
fn flow_key(v: NodeId, u: NodeId) -> (u32, u32) {
    if v < u {
        (v, u)
    } else {
        (u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_graph::builder::graph_from_edges;
    use hk_graph::gen::planted_partition;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_cliques() -> Graph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
            (3, 4),
        ])
    }

    #[test]
    fn recovers_seed_clique() {
        let g = two_cliques();
        let mut rng = SmallRng::seed_from_u64(1);
        let res = crd(&g, 0, &CrdParams::default(), &mut rng);
        // The seed's clique must dominate the cluster.
        let inside = res.cluster.iter().filter(|&&v| v < 4).count();
        assert!(inside >= 3, "cluster {:?}", res.cluster);
        assert!(res.conductance < 0.5);
        assert!(res.operations > 0);
    }

    #[test]
    fn planted_partition_block() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pp = planted_partition(3, 40, 0.4, 0.01, &mut rng).unwrap();
        let res = crd(&pp.graph, 5, &CrdParams::default(), &mut rng);
        let inside = res.cluster.iter().filter(|&&v| v < 40).count();
        assert!(
            inside * 2 > res.cluster.len(),
            "cluster mostly off-block: {inside}/{}",
            res.cluster.len()
        );
        assert!(res.conductance < 0.5, "conductance {}", res.conductance);
    }

    #[test]
    fn more_iterations_spread_more_mass() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pp = planted_partition(3, 40, 0.4, 0.02, &mut rng).unwrap();
        let few = crd(
            &pp.graph,
            0,
            &CrdParams {
                iterations: 2,
                ..CrdParams::default()
            },
            &mut rng,
        );
        let many = crd(
            &pp.graph,
            0,
            &CrdParams {
                iterations: 12,
                ..CrdParams::default()
            },
            &mut rng,
        );
        assert!(many.operations >= few.operations);
        assert!(many.rounds >= few.rounds);
    }

    #[test]
    fn isolated_seed_returns_singleton() {
        let mut b = hk_graph::GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_nodes(3);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(4);
        let res = crd(&g, 2, &CrdParams::default(), &mut rng);
        assert_eq!(res.cluster, vec![2]);
    }

    #[test]
    #[should_panic(expected = "seed out of range")]
    fn rejects_bad_seed() {
        let g = two_cliques();
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = crd(&g, 99, &CrdParams::default(), &mut rng);
    }
}

//! Dinic's maximum-flow algorithm on explicit flow networks.
//!
//! Substrate for the `SimpleLocal` baseline (§7.4 competitor), which
//! reduces conductance improvement to a sequence of s-t min-cuts on an
//! augmented graph. Capacities are `f64` (the augmentation multiplies
//! degrees by fractional conductance values); comparisons use an epsilon.

/// Tolerance below which a residual capacity counts as saturated.
const EPS: f64 = 1e-12;

#[derive(Clone, Debug)]
struct Edge {
    to: u32,
    cap: f64,
}

/// A directed flow network. Edges are stored in pairs: edge `2i` and its
/// reverse `2i + 1`, so the residual update is `edges[e ^ 1].cap += f`.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    adj: Vec<Vec<u32>>,
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed edge `u -> v` with capacity `cap` and reverse
    /// capacity `rev_cap` (use `rev_cap = cap` for an undirected edge).
    /// Returns the forward edge id.
    pub fn add_edge(&mut self, u: u32, v: u32, cap: f64, rev_cap: f64) -> usize {
        assert!(
            cap >= 0.0 && rev_cap >= 0.0,
            "capacities must be non-negative"
        );
        let id = self.edges.len();
        self.edges.push(Edge { to: v, cap });
        self.edges.push(Edge {
            to: u,
            cap: rev_cap,
        });
        self.adj[u as usize].push(id as u32);
        self.adj[v as usize].push(id as u32 + 1);
        id
    }

    /// Residual capacity of edge `e`.
    pub fn residual(&self, e: usize) -> f64 {
        self.edges[e].cap
    }

    /// Maximum s-t flow (Dinic: BFS level graph + DFS blocking flows).
    pub fn max_flow(&mut self, s: u32, t: u32) -> f64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.num_nodes();
        let mut flow = 0.0f64;
        let mut level = vec![-1i32; n];
        let mut it = vec![0usize; n];
        loop {
            // BFS: build the level graph over residual edges.
            level.iter_mut().for_each(|l| *l = -1);
            level[s as usize] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for &e in &self.adj[v as usize] {
                    let edge = &self.edges[e as usize];
                    if edge.cap > EPS && level[edge.to as usize] < 0 {
                        level[edge.to as usize] = level[v as usize] + 1;
                        queue.push_back(edge.to);
                    }
                }
            }
            if level[t as usize] < 0 {
                return flow;
            }
            it.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut it);
                if pushed <= EPS {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(&mut self, v: u32, t: u32, limit: f64, level: &[i32], it: &mut [usize]) -> f64 {
        if v == t {
            return limit;
        }
        while it[v as usize] < self.adj[v as usize].len() {
            let e = self.adj[v as usize][it[v as usize]] as usize;
            let Edge { to, cap } = self.edges[e];
            if cap > EPS && level[to as usize] == level[v as usize] + 1 {
                let pushed = self.dfs(to, t, limit.min(cap), level, it);
                if pushed > EPS {
                    self.edges[e].cap -= pushed;
                    self.edges[e ^ 1].cap += pushed;
                    return pushed;
                }
            }
            it[v as usize] += 1;
        }
        0.0
    }

    /// After [`FlowNetwork::max_flow`], the source side of a minimum cut: every node
    /// reachable from `s` in the residual network.
    pub fn min_cut_side(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        seen[s as usize] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &e in &self.adj[v as usize] {
                let edge = &self.edges[e as usize];
                if edge.cap > EPS && !seen[edge.to as usize] {
                    seen[edge.to as usize] = true;
                    stack.push(edge.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_textbook_network() {
        // CLRS-style: max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0, 0.0);
        net.add_edge(0, 2, 13.0, 0.0);
        net.add_edge(1, 2, 10.0, 0.0);
        net.add_edge(2, 1, 4.0, 0.0);
        net.add_edge(1, 3, 12.0, 0.0);
        net.add_edge(3, 2, 9.0, 0.0);
        net.add_edge(2, 4, 14.0, 0.0);
        net.add_edge(4, 3, 7.0, 0.0);
        net.add_edge(3, 5, 20.0, 0.0);
        net.add_edge(4, 5, 4.0, 0.0);
        let f = net.max_flow(0, 5);
        assert!((f - 23.0).abs() < 1e-9, "flow {f}");
    }

    #[test]
    fn parallel_paths() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0, 0.0);
        net.add_edge(0, 2, 1.0, 0.0);
        net.add_edge(1, 3, 1.0, 0.0);
        net.add_edge(2, 3, 1.0, 0.0);
        assert!((net.max_flow(0, 3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_respected() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0, 0.0);
        net.add_edge(1, 2, 2.5, 0.0);
        assert!((net.max_flow(0, 2) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn disconnected_sink_means_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0, 0.0);
        net.add_edge(2, 3, 3.0, 0.0);
        assert_eq!(net.max_flow(0, 3), 0.0);
    }

    #[test]
    fn undirected_edges_carry_flow_both_ways() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0, 1.0);
        net.add_edge(1, 2, 1.0, 1.0);
        assert!((net.max_flow(0, 2) - 1.0).abs() < 1e-12);
        // Reverse direction on a fresh network.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0, 1.0);
        net.add_edge(1, 2, 1.0, 1.0);
        assert!((net.max_flow(2, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_cut_matches_flow_value() {
        let mut net = FlowNetwork::new(6);
        let caps = [
            (0u32, 1u32, 3.0),
            (0, 2, 2.0),
            (1, 3, 2.0),
            (2, 3, 1.0),
            (1, 4, 1.0),
            (3, 5, 3.0),
            (4, 5, 2.0),
        ];
        let ids: Vec<usize> = caps
            .iter()
            .map(|&(u, v, c)| net.add_edge(u, v, c, 0.0))
            .collect();
        let f = net.max_flow(0, 5);
        let side = net.min_cut_side(0);
        assert!(side[0]);
        assert!(!side[5]);
        // Cut value: sum of original capacities of saturated crossing edges.
        let mut cut = 0.0;
        for (i, &(u, v, c)) in caps.iter().enumerate() {
            if side[u as usize] && !side[v as usize] {
                cut += c;
                // Crossing edges are saturated.
                assert!(net.residual(ids[i]) < 1e-9);
            }
        }
        assert!((f - cut).abs() < 1e-9, "flow {f} vs cut {cut}");
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn rejects_equal_source_sink() {
        let mut net = FlowNetwork::new(2);
        let _ = net.max_flow(0, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force min cut by enumerating all source-containing subsets.
    fn brute_force_min_cut(n: usize, edges: &[(u32, u32, f64)], s: u32, t: u32) -> f64 {
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                continue;
            }
            let mut cut = 0.0;
            for &(u, v, c) in edges {
                if mask & (1 << u) != 0 && mask & (1 << v) == 0 {
                    cut += c;
                }
            }
            best = best.min(cut);
        }
        best
    }

    proptest! {
        /// Max-flow equals brute-force min-cut on small random networks.
        #[test]
        fn max_flow_min_cut_duality(
            edges in prop::collection::vec((0u32..6, 0u32..6, 0.0f64..8.0), 1..14)
        ) {
            let edges: Vec<_> = edges.into_iter().filter(|&(u, v, _)| u != v).collect();
            prop_assume!(!edges.is_empty());
            let mut net = FlowNetwork::new(6);
            for &(u, v, c) in &edges {
                net.add_edge(u, v, c, 0.0);
            }
            let f = net.max_flow(0, 5);
            let cut = brute_force_min_cut(6, &edges, 0, 5);
            prop_assert!((f - cut).abs() < 1e-6, "flow {f} vs brute cut {cut}");
        }
    }
}

#![warn(missing_docs)]

//! # hk-flow
//!
//! Flow-based local-clustering baselines for the SIGMOD 2019 TEA/TEA+
//! evaluation (§7.4 competitors), built on an in-house max-flow substrate:
//!
//! * [`dinic`] — Dinic's max-flow / min-cut on explicit networks;
//! * [`mod@simple_local`] — SimpleLocal (Veldt, Gleich & Mahoney, ICML'16):
//!   conductance improvement via repeated augmented-graph min-cuts;
//! * [`mod@crd`] — Capacity Releasing Diffusion (Wang et al., ICML'17):
//!   push-relabel mass diffusion with doubling capacities.
//!
//! Both baselines exist to reproduce Figure 4's shape: they trail the
//! HKPR-based methods in running time at comparable cluster quality.

pub mod crd;
pub mod dinic;
pub mod simple_local;
mod util;

pub use crd::{crd, CrdParams, CrdResult};
pub use dinic::FlowNetwork;
pub use simple_local::{simple_local, simple_local_from_seed, SimpleLocalResult};

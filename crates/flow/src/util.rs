//! Shared helpers for the flow-based baselines (kept crate-private-ish so
//! `hk-flow` stays independent of `hk-cluster`).

use hk_graph::{Graph, NodeId};

/// Conductance of a membership mask.
pub fn conductance_members(graph: &Graph, members: &[bool]) -> f64 {
    debug_assert_eq!(members.len(), graph.num_nodes());
    let mut vol = 0usize;
    let mut cut = 0usize;
    for v in graph.nodes() {
        if !members[v as usize] {
            continue;
        }
        vol += graph.degree(v);
        for &u in graph.neighbors(v) {
            if !members[u as usize] {
                cut += 1;
            }
        }
    }
    let denom = vol.min(graph.volume().saturating_sub(vol));
    if denom == 0 {
        1.0
    } else {
        cut as f64 / denom as f64
    }
}

/// Sweep over nodes ranked by `score` descending: return the prefix with
/// minimum conductance (and that conductance). `scored` holds
/// `(node, score)` pairs with positive scores.
pub fn sweep_by_score(graph: &Graph, scored: &[(NodeId, f64)]) -> (Vec<NodeId>, f64) {
    if scored.is_empty() {
        return (Vec::new(), 1.0);
    }
    let mut order: Vec<(NodeId, f64)> = scored.to_vec();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    let mut members = vec![false; graph.num_nodes()];
    let mut vol = 0usize;
    let mut cut = 0usize;
    let total = graph.volume();
    let mut best_phi = f64::INFINITY;
    let mut best_len = 0usize;
    for (i, &(v, _)) in order.iter().enumerate() {
        let d = graph.degree(v);
        let internal = graph
            .neighbors(v)
            .iter()
            .filter(|&&u| members[u as usize])
            .count();
        members[v as usize] = true;
        vol += d;
        cut = cut + d - 2 * internal;
        let denom = vol.min(total - vol);
        let phi = if denom == 0 {
            1.0
        } else {
            cut as f64 / denom as f64
        };
        if phi < best_phi {
            best_phi = phi;
            best_len = i + 1;
        }
    }
    let mut cluster: Vec<NodeId> = order[..best_len].iter().map(|&(v, _)| v).collect();
    cluster.sort_unstable();
    (cluster, best_phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_graph::builder::graph_from_edges;

    fn barbell() -> Graph {
        graph_from_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn conductance_matches_hand_value() {
        let g = barbell();
        let mut members = vec![false; 6];
        members[0] = true;
        members[1] = true;
        members[2] = true;
        assert!((conductance_members(&g, &members) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_finds_triangle() {
        let g = barbell();
        let scored = vec![(0u32, 1.0), (1, 0.9), (2, 0.8), (3, 0.1), (4, 0.05)];
        let (cluster, phi) = sweep_by_score(&g, &scored);
        assert_eq!(cluster, vec![0, 1, 2]);
        assert!((phi - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let g = barbell();
        let (cluster, phi) = sweep_by_score(&g, &[]);
        assert!(cluster.is_empty());
        assert_eq!(phi, 1.0);
    }
}

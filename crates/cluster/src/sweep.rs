//! The sweep cut (§2.2): from an approximate HKPR vector to a local
//! cluster.
//!
//! 1. take the support `S*` of the estimate;
//! 2. sort by normalized HKPR `rho_hat[v] / d(v)` descending;
//! 3. return the prefix `S*_i` with minimum conductance.
//!
//! Runs in `O(|S*| log |S*|)` given the sparse estimate, exactly as the
//! paper states (citing [21, 42]). The TEA+ offset coefficient is ignored
//! by construction — it shifts every normalized value equally and cannot
//! change the order (§5.3).

use hk_graph::{Graph, NodeId};
use hkpr_core::HkprEstimate;

use crate::conductance::{MemberScratch, SweepState};

/// Result of a sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The minimizing prefix, sorted ascending by node id.
    pub cluster: Vec<NodeId>,
    /// Its conductance.
    pub conductance: f64,
    /// Number of candidate nodes that were swept (`|S*|`).
    pub support_size: usize,
    /// Length of the winning prefix.
    pub best_prefix: usize,
}

/// Sweep an explicit ranking (descending normalized score). Returns `None`
/// when `ranked` is empty.
pub fn sweep_ranked(graph: &Graph, ranked: &[(NodeId, f64)]) -> Option<SweepResult> {
    run_sweep(ranked, SweepState::new(graph))
}

/// [`sweep_ranked`] reusing a caller-owned membership buffer (no
/// per-sweep allocation; see [`MemberScratch`]).
pub fn sweep_ranked_with(
    graph: &Graph,
    ranked: &[(NodeId, f64)],
    member: &mut MemberScratch,
) -> Option<SweepResult> {
    run_sweep(ranked, SweepState::with_scratch(graph, member))
}

fn run_sweep(ranked: &[(NodeId, f64)], mut state: SweepState<'_>) -> Option<SweepResult> {
    if ranked.is_empty() {
        return None;
    }
    let mut best_phi = f64::INFINITY;
    let mut best_prefix = 0usize;
    for (i, &(v, _)) in ranked.iter().enumerate() {
        let phi = state.push(v);
        if phi < best_phi {
            best_phi = phi;
            best_prefix = i + 1;
        }
    }
    let mut cluster: Vec<NodeId> = ranked[..best_prefix].iter().map(|&(v, _)| v).collect();
    cluster.sort_unstable();
    Some(SweepResult {
        cluster,
        conductance: best_phi,
        support_size: ranked.len(),
        best_prefix,
    })
}

/// Sweep an HKPR estimate: rank its support by normalized value, then run
/// [`sweep_ranked`]. Returns `None` for an empty estimate (e.g. a seed in
/// an empty graph).
pub fn sweep_estimate(graph: &Graph, estimate: &HkprEstimate) -> Option<SweepResult> {
    let ranked = estimate.ranked_by_normalized(graph);
    sweep_ranked(graph, &ranked)
}

/// [`sweep_estimate`] with caller-owned ranking and membership buffers,
/// so batch serving reranks and sweeps without per-query allocation.
pub fn sweep_estimate_with(
    graph: &Graph,
    estimate: &HkprEstimate,
    ranked: &mut Vec<(NodeId, f64)>,
    member: &mut MemberScratch,
) -> Option<SweepResult> {
    estimate.ranked_by_normalized_into(graph, ranked);
    sweep_ranked_with(graph, ranked, member)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conductance::conductance;
    use hk_graph::builder::graph_from_edges;
    use hkpr_core::{exact_hkpr, HkprEstimate, PoissonTable};

    /// Two 4-cliques joined by a single edge — the planted cut is obvious.
    fn two_cliques() -> Graph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
            (3, 4),
        ])
    }

    #[test]
    fn recovers_planted_clique_from_exact_hkpr() {
        let g = two_cliques();
        let p = PoissonTable::new(5.0);
        let rho = exact_hkpr(&g, &p, 0);
        let mut est = HkprEstimate::new();
        for (v, &x) in rho.iter().enumerate() {
            if x > 0.0 {
                est.add_mass(v as u32, x);
            }
        }
        let result = sweep_estimate(&g, &est).unwrap();
        assert_eq!(result.cluster, vec![0, 1, 2, 3]);
        // Phi = 1 cut edge / vol {0,1,2,3} = 13.
        assert!((result.conductance - 1.0 / 13.0).abs() < 1e-12);
        assert_eq!(result.best_prefix, 4);
    }

    #[test]
    fn returns_minimum_over_all_prefixes() {
        let g = two_cliques();
        // Hand-build a ranking; the sweep must find the best prefix even
        // though later prefixes exist.
        let ranked: Vec<(NodeId, f64)> =
            vec![(0, 0.9), (1, 0.8), (2, 0.7), (3, 0.6), (4, 0.5), (5, 0.4)];
        let res = sweep_ranked(&g, &ranked).unwrap();
        for i in 1..=ranked.len() {
            let prefix: Vec<NodeId> = ranked[..i].iter().map(|&(v, _)| v).collect();
            assert!(
                res.conductance <= conductance(&g, &prefix) + 1e-12,
                "prefix {i} beats reported minimum"
            );
        }
        assert_eq!(res.support_size, 6);
    }

    #[test]
    fn empty_ranking_gives_none() {
        let g = two_cliques();
        assert!(sweep_ranked(&g, &[]).is_none());
        assert!(sweep_estimate(&g, &HkprEstimate::new()).is_none());
    }

    #[test]
    fn single_node_support() {
        let g = two_cliques();
        let mut est = HkprEstimate::new();
        est.add_mass(0, 1.0);
        let res = sweep_estimate(&g, &est).unwrap();
        assert_eq!(res.cluster, vec![0]);
        assert_eq!(res.best_prefix, 1);
        // {0} has vol 3, cut 3 -> conductance 1.
        assert!((res.conductance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offset_does_not_change_result() {
        let g = two_cliques();
        let p = PoissonTable::new(5.0);
        let rho = exact_hkpr(&g, &p, 0);
        let mut base = HkprEstimate::new();
        for (v, &x) in rho.iter().enumerate() {
            base.add_mass(v as u32, x);
        }
        let mut offset = base.clone();
        offset.set_offset_coeff(0.123);
        let a = sweep_estimate(&g, &base).unwrap();
        let b = sweep_estimate(&g, &offset).unwrap();
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.conductance, b.conductance);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::conductance::conductance;
    use hk_graph::gen::erdos_renyi_gnm;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        /// The sweep's reported conductance equals the conductance of the
        /// returned cluster and is minimal over all prefixes.
        #[test]
        fn sweep_is_prefix_minimal(seed in 0u64..300) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = erdos_renyi_gnm(25, 50, &mut rng).unwrap();
            // Rank a pseudo-random subset of nodes.
            let ranked: Vec<(u32, f64)> = (0..25u32)
                .filter(|v| !(v * 7 + seed as u32).is_multiple_of(3))
                .map(|v| (v, 1.0 / (v as f64 + 1.0)))
                .collect();
            prop_assume!(!ranked.is_empty());
            let res = sweep_ranked(&g, &ranked).unwrap();
            prop_assert!((res.conductance - conductance(&g, &res.cluster)).abs() < 1e-12);
            for i in 1..=ranked.len() {
                let prefix: Vec<u32> = ranked[..i].iter().map(|&(v, _)| v).collect();
                prop_assert!(res.conductance <= conductance(&g, &prefix) + 1e-12);
            }
        }
    }
}

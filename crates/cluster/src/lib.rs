#![warn(missing_docs)]

//! # hk-cluster
//!
//! Local graph clustering on top of heat kernel PageRank — phase two of
//! the framework in *Efficient Estimation of Heat Kernel PageRank for
//! Local Clustering* (SIGMOD 2019) plus the quality metrics of its
//! evaluation:
//!
//! * [`mod@conductance`] — the cut-quality objective `Phi(S)` and an
//!   incremental tracker;
//! * [`sweep`] — the sweep cut over degree-normalized HKPR rankings;
//! * [`local`] — the [`LocalClusterer`] façade dispatching to every
//!   estimator in `hkpr-core`;
//! * [`metrics`] — precision/recall/F1 (§7.6) and NDCG (§7.5);
//! * [`community`] — ground-truth community bookkeeping.
//!
//! Multi-query execution lives one layer up, in the `hk-serve` crate: its
//! persistent `QueryEngine` (worker pool + result cache + deadlines) and
//! the one-shot `hk_serve::run_batch` both drive [`LocalClusterer`]
//! through per-worker [`QueryScratch`] reuse.
//!
//! ## Example
//!
//! ```
//! use hk_graph::gen::planted_partition;
//! use hk_cluster::{LocalClusterer, Method};
//! use hkpr_core::HkprParams;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let pp = planted_partition(4, 30, 0.4, 0.02, &mut rng).unwrap();
//! let params = HkprParams::builder(&pp.graph).t(5.0).delta(1e-3).build().unwrap();
//! let result = LocalClusterer::new(&pp.graph)
//!     .run(Method::TeaPlus, 0, &params, 42)
//!     .unwrap();
//! assert!(result.conductance < 0.7);
//! ```

pub mod community;
pub mod conductance;
pub mod local;
pub mod metrics;
pub mod reference;
pub mod sweep;

pub use community::CommunitySet;
pub use conductance::{conductance, MemberScratch, SweepState};
pub use local::{ClusterResult, LocalClusterer, Method, QueryScratch};
pub use metrics::{f1_score, ndcg_at_k, F1Score};
pub use sweep::{
    sweep_estimate, sweep_estimate_with, sweep_ranked, sweep_ranked_with, SweepResult,
};

//! Ground-truth community handling for the §7.6 experiment.
//!
//! The paper scores each algorithm's output cluster against the known
//! community of the seed node (SNAP top-5000 communities there; planted
//! partitions here — see DESIGN.md §3).

use hk_graph::NodeId;
use hkpr_core::fxhash::FxHashMap;

use crate::metrics::{f1_score, F1Score};

/// A set of (possibly overlapping) ground-truth communities.
#[derive(Clone, Debug, Default)]
pub struct CommunitySet {
    communities: Vec<Vec<NodeId>>,
    membership: FxHashMap<NodeId, Vec<u32>>,
}

impl CommunitySet {
    /// Build from explicit member lists.
    pub fn new(communities: Vec<Vec<NodeId>>) -> Self {
        let mut membership: FxHashMap<NodeId, Vec<u32>> = FxHashMap::default();
        for (c, members) in communities.iter().enumerate() {
            for &v in members {
                membership.entry(v).or_default().push(c as u32);
            }
        }
        CommunitySet {
            communities,
            membership,
        }
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// Whether there are no communities.
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Member list of community `c`.
    pub fn community(&self, c: usize) -> &[NodeId] {
        &self.communities[c]
    }

    /// Community ids containing `v` (empty slice if none).
    pub fn communities_of(&self, v: NodeId) -> &[u32] {
        self.membership.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ids of communities with at least `min_size` members — the paper
    /// seeds its §7.6 queries from "known communities of size greater
    /// than 100".
    pub fn at_least(&self, min_size: usize) -> Vec<u32> {
        self.communities
            .iter()
            .enumerate()
            .filter(|(_, m)| m.len() >= min_size)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Score `prediction` against the best community containing `seed`
    /// (a seed can belong to several; take the max F1, mirroring the
    /// ground-truth evaluation protocol). Returns `None` if the seed
    /// belongs to no community.
    pub fn score_for_seed(&self, seed: NodeId, prediction: &[NodeId]) -> Option<F1Score> {
        let cands = self.communities_of(seed);
        cands
            .iter()
            .map(|&c| f1_score(prediction, &self.communities[c as usize]))
            .max_by(|a, b| a.f1.partial_cmp(&b.f1).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CommunitySet {
        CommunitySet::new(vec![vec![0, 1, 2, 3], vec![3, 4, 5], vec![6, 7]])
    }

    #[test]
    fn membership_queries() {
        let cs = sample();
        assert_eq!(cs.len(), 3);
        assert!(!cs.is_empty());
        assert_eq!(cs.communities_of(3), &[0, 1]); // overlap
        assert_eq!(cs.communities_of(6), &[2]);
        assert!(cs.communities_of(99).is_empty());
        assert_eq!(cs.community(1), &[3, 4, 5]);
    }

    #[test]
    fn size_filter() {
        let cs = sample();
        assert_eq!(cs.at_least(3), vec![0, 1]);
        assert_eq!(cs.at_least(4), vec![0]);
        assert!(cs.at_least(10).is_empty());
    }

    #[test]
    fn best_community_scoring() {
        let cs = sample();
        // Node 3 belongs to communities 0 and 1; prediction matching
        // community 1 must pick it.
        let score = cs.score_for_seed(3, &[3, 4, 5]).unwrap();
        assert_eq!(score.f1, 1.0);
        // Prediction closer to community 0.
        let score = cs.score_for_seed(3, &[0, 1, 2, 3]).unwrap();
        assert_eq!(score.f1, 1.0);
        // Seed without a community.
        assert!(cs.score_for_seed(42, &[1, 2]).is_none());
    }

    #[test]
    fn partial_match_scoring() {
        let cs = sample();
        let score = cs.score_for_seed(6, &[6, 0, 1]).unwrap();
        // Community {6,7}: hits 1, precision 1/3, recall 1/2.
        assert!((score.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((score.recall - 0.5).abs() < 1e-12);
    }
}

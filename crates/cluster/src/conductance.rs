//! Conductance of node sets.
//!
//! The clustering-quality measure the whole paper optimizes (§2.1):
//!
//! ```text
//! Phi(S) = |cut(S)| / min(vol(S), vol(V \ S))
//! ```
//!
//! where `vol(S)` sums the degrees of `S` and `cut(S)` counts edges with
//! exactly one endpoint in `S`. Smaller is better: the set is internally
//! dense and externally sparse.

use hk_graph::{Graph, NodeId};
use hkpr_core::fxhash::FxHashSet;

/// Conductance of `nodes` (need not be sorted; duplicates are ignored).
///
/// Degenerate sets — empty, zero-volume, or covering every edge endpoint —
/// have conductance defined as 1.0, the worst value, so sweeps never
/// select them.
pub fn conductance(graph: &Graph, nodes: &[NodeId]) -> f64 {
    let members: FxHashSet<NodeId> = nodes.iter().copied().collect();
    let mut vol = 0usize;
    let mut cut = 0usize;
    for &v in members.iter() {
        vol += graph.degree(v);
        for &u in graph.neighbors(v) {
            if !members.contains(&u) {
                cut += 1;
            }
        }
    }
    let complement_vol = graph.volume().saturating_sub(vol);
    let denom = vol.min(complement_vol);
    if denom == 0 {
        1.0
    } else {
        cut as f64 / denom as f64
    }
}

/// Reusable epoch-stamped membership buffer for [`SweepState`]: clearing
/// between sweeps is one integer bump, so batch serving pays no per-sweep
/// allocation or memset.
#[derive(Clone, Debug, Default)]
pub struct MemberScratch {
    epoch: u32,
    stamps: Vec<u32>,
}

impl MemberScratch {
    /// Empty scratch; sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }
}

/// How many of `nbrs` are current members (`stamps[u] == epoch`). Exact
/// integer counting, so the AVX2 body (compiled under the `simd` feature,
/// dispatched at runtime) returns the identical count as the scalar fold
/// in any lane decomposition.
#[inline]
fn count_members(stamps: &[u32], epoch: u32, nbrs: &[NodeId]) -> usize {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if hkpr_core::simd::simd_active() {
        // SAFETY: AVX2 support verified by `simd_active`; neighbor ids
        // are < num_nodes() <= stamps.len() by the CSR invariant.
        return unsafe { hkpr_core::simd::count_stamped_avx2(stamps, epoch, nbrs) };
    }
    let mut internal = 0usize;
    for &u in nbrs {
        // SAFETY: u < num_nodes() <= stamps.len().
        internal += usize::from(unsafe { *stamps.get_unchecked(u as usize) } == epoch);
    }
    internal
}

/// Incremental conductance tracker used by the sweep: nodes are added one
/// at a time and the cut/volume update in O(d(v)) per insertion.
///
/// Membership is a dense epoch-stamped array over the node domain rather
/// than a hash set: the sweep probes membership once per incident edge,
/// and on the support sizes real queries produce those probes dominate
/// the whole sweep when they hash. The tracker borrows a
/// [`MemberScratch`] so repeated sweeps reuse one buffer with O(1)
/// logical clears.
#[derive(Debug)]
pub struct SweepState<'g> {
    graph: &'g Graph,
    member: MemberOwnership<'g>,
    len: usize,
    vol: usize,
    cut: usize,
}

#[derive(Debug)]
enum MemberOwnership<'g> {
    Owned(MemberScratch),
    Borrowed(&'g mut MemberScratch),
}

impl MemberOwnership<'_> {
    #[inline]
    fn scratch(&mut self) -> &mut MemberScratch {
        match self {
            MemberOwnership::Owned(m) => m,
            MemberOwnership::Borrowed(m) => m,
        }
    }

    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        let m = match self {
            MemberOwnership::Owned(m) => m,
            MemberOwnership::Borrowed(m) => m,
        };
        m.stamps[v as usize] == m.epoch
    }
}

impl<'g> SweepState<'g> {
    /// Empty state over `graph`, with its own membership buffer.
    pub fn new(graph: &'g Graph) -> Self {
        let mut member = MemberScratch::new();
        member.begin(graph.num_nodes());
        SweepState {
            graph,
            member: MemberOwnership::Owned(member),
            len: 0,
            vol: 0,
            cut: 0,
        }
    }

    /// Empty state over `graph` reusing a caller-owned membership buffer
    /// (the batch-serving path: no per-sweep allocation).
    pub fn with_scratch(graph: &'g Graph, scratch: &'g mut MemberScratch) -> Self {
        scratch.begin(graph.num_nodes());
        SweepState {
            graph,
            member: MemberOwnership::Borrowed(scratch),
            len: 0,
            vol: 0,
            cut: 0,
        }
    }

    /// Add `v` (must not already be a member) and return the new
    /// conductance.
    pub fn push(&mut self, v: NodeId) -> f64 {
        debug_assert!(!self.member.contains(v), "node {v} already in sweep set");
        let d = self.graph.degree(v);
        // Every edge to an existing member stops being cut; every other
        // incident edge becomes cut. The membership probe per incident
        // edge is the sweep's hot load: a branchless unchecked stamp
        // compare (neighbor ids are < n by the CSR invariant and the
        // stamp array is sized to n) keeps this one gather + one add per
        // edge. Pure integer counting, so the result is exact regardless.
        let nbrs = self.graph.neighbors(v);
        let m = self.member.scratch();
        let epoch = m.epoch;
        let internal = count_members(&m.stamps, epoch, nbrs);
        self.vol += d;
        self.cut = self.cut + d - 2 * internal;
        let m = self.member.scratch();
        m.stamps[v as usize] = m.epoch;
        self.len += 1;
        self.conductance()
    }

    /// Current conductance (1.0 for degenerate states, as in
    /// [`conductance`]).
    pub fn conductance(&self) -> f64 {
        let complement = self.graph.volume().saturating_sub(self.vol);
        let denom = self.vol.min(complement);
        if denom == 0 {
            1.0
        } else {
            self.cut as f64 / denom as f64
        }
    }

    /// Current set volume.
    pub fn volume(&self) -> usize {
        self.vol
    }

    /// Current cut size.
    pub fn cut(&self) -> usize {
        self.cut
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_graph::builder::graph_from_edges;

    /// Two triangles joined by one bridge edge.
    fn barbell() -> Graph {
        graph_from_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn hand_computed_values() {
        let g = barbell();
        // S = {0,1,2}: vol 7 (degrees 2+2+3), cut 1, complement vol 7.
        assert!((conductance(&g, &[0, 1, 2]) - 1.0 / 7.0).abs() < 1e-12);
        // S = {0}: vol 2, cut 2 -> 1.0.
        assert!((conductance(&g, &[0]) - 1.0).abs() < 1e-12);
        // S = {0,1}: vol 4, cut 2 (edges 0-2 and 1-2).
        assert!((conductance(&g, &[0, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sets_have_unit_conductance() {
        let g = barbell();
        assert_eq!(conductance(&g, &[]), 1.0);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(conductance(&g, &all), 1.0);
    }

    #[test]
    fn duplicates_are_ignored() {
        let g = barbell();
        assert_eq!(
            conductance(&g, &[0, 1, 2]),
            conductance(&g, &[0, 1, 2, 2, 1])
        );
    }

    #[test]
    fn complement_symmetry() {
        // Phi(S) counts the same cut for S and V\S; with equal volumes the
        // values coincide.
        let g = barbell();
        let phi_left = conductance(&g, &[0, 1, 2]);
        let phi_right = conductance(&g, &[3, 4, 5]);
        assert!((phi_left - phi_right).abs() < 1e-12);
    }

    #[test]
    fn sweep_state_matches_batch() {
        let g = barbell();
        let order = [2u32, 0, 1, 3, 4];
        let mut state = SweepState::new(&g);
        for i in 0..order.len() {
            let phi_inc = state.push(order[i]);
            let phi_batch = conductance(&g, &order[..=i]);
            assert!(
                (phi_inc - phi_batch).abs() < 1e-12,
                "prefix {i}: incremental {phi_inc} vs batch {phi_batch}"
            );
        }
        assert_eq!(state.len(), 5);
        assert!(!state.is_empty());
    }

    #[test]
    fn sweep_state_counters() {
        let g = barbell();
        let mut state = SweepState::new(&g);
        state.push(0);
        assert_eq!(state.volume(), 2);
        assert_eq!(state.cut(), 2);
        state.push(1);
        assert_eq!(state.volume(), 4);
        assert_eq!(state.cut(), 2);
        state.push(2);
        assert_eq!(state.volume(), 7);
        assert_eq!(state.cut(), 1);
    }
}

#[cfg(all(test, feature = "simd"))]
mod simd_tests {
    use super::*;
    use hk_graph::gen::erdos_renyi_gnm;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The vector membership scan must reproduce the scalar fold's
    /// conductance trajectory bit-for-bit (exact integer counts feeding
    /// one division — no tolerance needed or allowed).
    #[test]
    fn sweep_trajectory_identical_scalar_vs_simd() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = erdos_renyi_gnm(200, 800, &mut rng).unwrap();
        let run = |enabled: bool| -> Vec<u64> {
            hkpr_core::simd::set_simd_enabled(enabled);
            let mut state = SweepState::new(&g);
            let traj = (0..200u32).map(|v| state.push(v).to_bits()).collect();
            hkpr_core::simd::set_simd_enabled(true);
            traj
        };
        let scalar = run(false);
        let simd = run(true);
        assert_eq!(scalar, simd);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hk_graph::gen::erdos_renyi_gnm;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        /// Conductance always lies in [0, 1] and the incremental tracker
        /// agrees with the batch computation on random prefixes.
        #[test]
        fn bounds_and_incremental_agreement(seed in 0u64..500, picks in 1usize..15) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = erdos_renyi_gnm(30, 60, &mut rng).unwrap();
            let mut order: Vec<u32> = (0..30).collect();
            // Fisher-Yates shuffle driven by the proptest seed.
            for i in (1..order.len()).rev() {
                let j = (seed as usize * 31 + i * 17) % (i + 1);
                order.swap(i, j);
            }
            let prefix = &order[..picks];
            let phi = conductance(&g, prefix);
            prop_assert!((0.0..=1.0).contains(&phi), "phi={phi}");
            let mut state = SweepState::new(&g);
            let mut last = 1.0;
            for &v in prefix {
                last = state.push(v);
            }
            prop_assert!((last - phi).abs() < 1e-12);
        }
    }
}

//! Hash-map reference sweep — the seed implementation of the sweep cut,
//! kept verbatim as the end-to-end benchmark baseline (paired with
//! [`hkpr_core::reference`]'s estimators) and as a differential-testing
//! oracle for the dense [`crate::conductance::SweepState`].

use hk_graph::{Graph, NodeId};
use hkpr_core::fxhash::FxHashSet;
use hkpr_core::HkprEstimate;

use crate::sweep::SweepResult;

/// Incremental conductance tracker with hash-set membership (the seed's
/// `SweepState`).
struct HashedSweepState<'g> {
    graph: &'g Graph,
    members: FxHashSet<NodeId>,
    vol: usize,
    cut: usize,
}

impl<'g> HashedSweepState<'g> {
    fn new(graph: &'g Graph) -> Self {
        HashedSweepState {
            graph,
            members: FxHashSet::default(),
            vol: 0,
            cut: 0,
        }
    }

    fn push(&mut self, v: NodeId) -> f64 {
        let d = self.graph.degree(v);
        let internal = self
            .graph
            .neighbors(v)
            .iter()
            .filter(|u| self.members.contains(u))
            .count();
        self.vol += d;
        self.cut = self.cut + d - 2 * internal;
        self.members.insert(v);
        let complement = self.graph.volume().saturating_sub(self.vol);
        let denom = self.vol.min(complement);
        if denom == 0 {
            1.0
        } else {
            self.cut as f64 / denom as f64
        }
    }
}

/// [`crate::sweep::sweep_ranked`] over the hash-set tracker.
pub fn sweep_ranked_reference(graph: &Graph, ranked: &[(NodeId, f64)]) -> Option<SweepResult> {
    if ranked.is_empty() {
        return None;
    }
    let mut state = HashedSweepState::new(graph);
    let mut best_phi = f64::INFINITY;
    let mut best_prefix = 0usize;
    for (i, &(v, _)) in ranked.iter().enumerate() {
        let phi = state.push(v);
        if phi < best_phi {
            best_phi = phi;
            best_prefix = i + 1;
        }
    }
    let mut cluster: Vec<NodeId> = ranked[..best_prefix].iter().map(|&(v, _)| v).collect();
    cluster.sort_unstable();
    Some(SweepResult {
        cluster,
        conductance: best_phi,
        support_size: ranked.len(),
        best_prefix,
    })
}

/// [`crate::sweep::sweep_estimate`] over the hash-set tracker.
pub fn sweep_estimate_reference(graph: &Graph, estimate: &HkprEstimate) -> Option<SweepResult> {
    let ranked = estimate.ranked_by_normalized(graph);
    sweep_ranked_reference(graph, &ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_ranked;
    use hk_graph::gen::erdos_renyi_gnm;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dense_and_hashed_sweeps_agree() {
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = erdos_renyi_gnm(40, 90, &mut rng).unwrap();
            let ranked: Vec<(u32, f64)> = (0..40u32)
                .filter(|v| !(v * 13 + seed as u32).is_multiple_of(3))
                .map(|v| (v, 1.0 / (v as f64 + 1.0)))
                .collect();
            let dense = sweep_ranked(&g, &ranked).unwrap();
            let hashed = sweep_ranked_reference(&g, &ranked).unwrap();
            assert_eq!(dense.cluster, hashed.cluster);
            assert_eq!(dense.conductance, hashed.conductance);
            assert_eq!(dense.best_prefix, hashed.best_prefix);
        }
    }
}

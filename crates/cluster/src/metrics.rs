//! Clustering-quality metrics: precision / recall / F1 (§7.6) and NDCG
//! (§7.5).

use hk_graph::NodeId;
use hkpr_core::fxhash::FxHashSet;

/// Precision, recall and their harmonic mean for a predicted cluster
/// against a ground-truth community.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F1Score {
    /// |prediction ∩ truth| / |prediction|.
    pub precision: f64,
    /// |prediction ∩ truth| / |truth|.
    pub recall: f64,
    /// 2 P R / (P + R); 0 when both are 0.
    pub f1: f64,
}

/// Compute [`F1Score`]; degenerate inputs (empty prediction or truth)
/// yield zeros rather than NaNs.
pub fn f1_score(prediction: &[NodeId], truth: &[NodeId]) -> F1Score {
    if prediction.is_empty() || truth.is_empty() {
        return F1Score {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
        };
    }
    // Duplicates in either list must not inflate scores.
    let pred_set: FxHashSet<NodeId> = prediction.iter().copied().collect();
    let truth_set: FxHashSet<NodeId> = truth.iter().copied().collect();
    let hits = pred_set.iter().filter(|v| truth_set.contains(v)).count() as f64;
    let precision = hits / pred_set.len() as f64;
    let recall = hits / truth_set.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    F1Score {
        precision,
        recall,
        f1,
    }
}

/// Normalized Discounted Cumulative Gain at cutoff `k` (Järvelin &
/// Kekäläinen, the metric §7.5 uses to score normalized-HKPR rankings).
///
/// `ranking` is the predicted node order (best first); `relevance[v]`
/// gives each node's graded relevance — here the exact normalized HKPR.
/// `NDCG@k = DCG(ranking) / DCG(ideal)` with
/// `DCG = sum_i rel_i / log2(i + 2)`. Returns 1.0 when the ideal DCG is 0
/// (no relevant nodes: any ranking is vacuously perfect).
pub fn ndcg_at_k(ranking: &[NodeId], relevance: &[f64], k: usize) -> f64 {
    let k = k.min(ranking.len()).min(relevance.len());
    if k == 0 {
        return 1.0;
    }
    let dcg: f64 = ranking
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &v)| relevance.get(v as usize).copied().unwrap_or(0.0) / ((i + 2) as f64).log2())
        .sum();
    let mut ideal: Vec<f64> = relevance.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, rel)| rel / ((i + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        1.0
    } else {
        (dcg / idcg).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let s = f1_score(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn partial_overlap() {
        // prediction {1,2,3,4}, truth {3,4,5,6}: hits 2.
        let s = f1_score(&[1, 2, 3, 4], &[3, 4, 5, 6]);
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert!((s.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_and_empty() {
        let s = f1_score(&[1, 2], &[3, 4]);
        assert_eq!(s.f1, 0.0);
        assert_eq!(f1_score(&[], &[1]).f1, 0.0);
        assert_eq!(f1_score(&[1], &[]).f1, 0.0);
    }

    #[test]
    fn asymmetric_sizes() {
        // prediction covers all of a small truth set.
        let s = f1_score(&[0, 1, 2, 3, 4, 5, 6, 7], &[2, 3]);
        assert_eq!(s.recall, 1.0);
        assert!((s.precision - 0.25).abs() < 1e-12);
        assert!((s.f1 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let relevance = [0.5, 0.3, 0.9, 0.1];
        let ranking = [2u32, 0, 1, 3]; // descending relevance
        assert!((ndcg_at_k(&ranking, &relevance, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalizes_inversions() {
        let relevance = [0.9, 0.5, 0.1];
        let good = [0u32, 1, 2];
        let bad = [2u32, 1, 0];
        let g = ndcg_at_k(&good, &relevance, 3);
        let b = ndcg_at_k(&bad, &relevance, 3);
        assert!((g - 1.0).abs() < 1e-12);
        assert!(b < g);
        assert!(b > 0.0);
    }

    #[test]
    fn ndcg_respects_cutoff() {
        let relevance = [0.9, 0.5, 0.1, 0.0];
        // Top-1 correct, rest scrambled: NDCG@1 = 1.
        let ranking = [0u32, 3, 2, 1];
        assert!((ndcg_at_k(&ranking, &relevance, 1) - 1.0).abs() < 1e-12);
        assert!(ndcg_at_k(&ranking, &relevance, 4) < 1.0);
    }

    #[test]
    fn ndcg_degenerate_cases() {
        assert_eq!(ndcg_at_k(&[], &[0.5], 5), 1.0);
        assert_eq!(ndcg_at_k(&[0], &[], 5), 1.0);
        // All-zero relevance: vacuously perfect.
        assert_eq!(ndcg_at_k(&[0, 1], &[0.0, 0.0], 2), 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// F1 is symmetric in P/R structure and bounded.
        #[test]
        fn f1_bounds(pred in prop::collection::vec(0u32..40, 1..30),
                     truth in prop::collection::vec(0u32..40, 1..30)) {
            let s = f1_score(&pred, &truth);
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
            prop_assert!((0.0..=1.0).contains(&s.f1));
            prop_assert!(s.f1 <= s.precision.max(s.recall) + 1e-12);
            prop_assert!(s.f1 >= s.precision.min(s.recall) - 1e-12 || s.f1 == 0.0);
        }

        /// NDCG is always in [0, 1] and equals 1 for the ideal order.
        #[test]
        fn ndcg_bounds(rels in prop::collection::vec(0.0f64..1.0, 1..20), k in 1usize..25) {
            let n = rels.len();
            let identity: Vec<u32> = (0..n as u32).collect();
            let v = ndcg_at_k(&identity, &rels, k);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            let mut ideal: Vec<u32> = (0..n as u32).collect();
            ideal.sort_by(|&a, &b| rels[b as usize].partial_cmp(&rels[a as usize]).unwrap());
            let vi = ndcg_at_k(&ideal, &rels, k);
            prop_assert!((vi - 1.0).abs() < 1e-9);
        }
    }
}

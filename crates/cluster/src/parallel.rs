//! Multi-query parallelism.
//!
//! The paper notes (§6, discussing Shun et al.'s parallel local
//! clustering): "We believe that our algorithms may also exploit
//! parallelism for higher efficiency." Individual queries are inherently
//! sequential here (the push frontier is a data dependence), but *query
//! streams* parallelize embarrassingly: each seed's computation is
//! independent and read-only over the shared CSR graph.
//!
//! [`run_batch`] fans a seed list over `std::thread::scope` workers —
//! no extra dependencies, no unsafe — and returns per-seed results in
//! input order. The `parallel_scaling` bench measures the resulting
//! throughput curve.

use hk_graph::NodeId;
use hkpr_core::{HkprError, HkprParams};

use crate::local::{ClusterResult, LocalClusterer, Method, QueryScratch};

/// Run one clustering query per seed, distributed over `threads` workers.
///
/// Results arrive in the same order as `seeds`. Each query derives its RNG
/// stream from `rng_seed + index`, so a batch run is bit-identical to the
/// equivalent sequential loop. Every worker owns one [`QueryScratch`] —
/// the dense query workspace plus sweep buffer — reused across its whole
/// chunk, so steady-state batch serving performs no per-query allocation
/// in the estimator hot path.
pub fn run_batch(
    clusterer: &LocalClusterer<'_>,
    method: Method,
    seeds: &[NodeId],
    params: &HkprParams,
    rng_seed: u64,
    threads: usize,
) -> Vec<Result<ClusterResult, HkprError>> {
    let threads = threads.max(1);
    if threads == 1 || seeds.len() <= 1 {
        let mut scratch = QueryScratch::new();
        return seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                clusterer.run_in(
                    method,
                    s,
                    params,
                    rng_seed.wrapping_add(i as u64),
                    &mut scratch,
                )
            })
            .collect();
    }

    let mut results: Vec<Option<Result<ClusterResult, HkprError>>> =
        (0..seeds.len()).map(|_| None).collect();
    // Static round-robin partition: query costs are similar in
    // expectation, and determinism matters more than perfect balance.
    std::thread::scope(|scope| {
        for (chunk_id, chunk) in results
            .chunks_mut(seeds.len().div_ceil(threads))
            .enumerate()
        {
            let chunk_start = chunk_id * seeds.len().div_ceil(threads);
            let seeds = &seeds[chunk_start..chunk_start + chunk.len()];
            scope.spawn(move || {
                let mut scratch = QueryScratch::new();
                for (off, (&s, slot)) in seeds.iter().zip(chunk.iter_mut()).enumerate() {
                    let i = chunk_start + off;
                    *slot = Some(clusterer.run_in(
                        method,
                        s,
                        params,
                        rng_seed.wrapping_add(i as u64),
                        &mut scratch,
                    ));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_graph::gen::planted_partition;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (hk_graph::Graph, Vec<NodeId>) {
        let mut rng = SmallRng::seed_from_u64(44);
        let pp = planted_partition(4, 50, 0.3, 0.01, &mut rng).unwrap();
        let seeds = vec![0, 55, 110, 165, 10, 60];
        (pp.graph, seeds)
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let (g, seeds) = setup();
        let params = HkprParams::builder(&g)
            .delta(1e-3)
            .p_f(0.01)
            .build()
            .unwrap();
        let clusterer = LocalClusterer::new(&g);
        let seq = run_batch(&clusterer, Method::TeaPlus, &seeds, &params, 9, 1);
        let par = run_batch(&clusterer, Method::TeaPlus, &seeds, &params, 9, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.cluster, b.cluster);
            assert_eq!(a.conductance, b.conductance);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn errors_are_reported_per_seed() {
        let (g, _) = setup();
        let params = HkprParams::builder(&g).build().unwrap();
        let clusterer = LocalClusterer::new(&g);
        let seeds = vec![0, 99_999, 1];
        let out = run_batch(&clusterer, Method::TeaPlus, &seeds, &params, 1, 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn degenerate_thread_counts() {
        let (g, seeds) = setup();
        let params = HkprParams::builder(&g).delta(1e-3).build().unwrap();
        let clusterer = LocalClusterer::new(&g);
        let zero = run_batch(&clusterer, Method::TeaPlus, &seeds, &params, 2, 0);
        let many = run_batch(&clusterer, Method::TeaPlus, &seeds, &params, 2, 64);
        assert_eq!(zero.len(), seeds.len());
        assert_eq!(many.len(), seeds.len());
        for (a, b) in zero.iter().zip(many.iter()) {
            assert_eq!(a.as_ref().unwrap().cluster, b.as_ref().unwrap().cluster);
        }
    }

    #[test]
    fn empty_batch() {
        let (g, _) = setup();
        let params = HkprParams::builder(&g).build().unwrap();
        let clusterer = LocalClusterer::new(&g);
        let out = run_batch(&clusterer, Method::TeaPlus, &[], &params, 1, 4);
        assert!(out.is_empty());
    }
}

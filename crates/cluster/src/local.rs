//! End-to-end local clustering façade.
//!
//! Wraps every HKPR estimator behind one call: compute the approximate
//! HKPR vector of a seed, sweep it, return the best-conductance prefix —
//! the two-phase framework all heat-kernel local-clustering methods share
//! (§2.2). Used by the examples and by every experiment binary.

use hk_graph::{Graph, NodeId};
use hkpr_core::{
    cluster_hkpr::cluster_hkpr, hk_relax::hk_relax, monte_carlo::monte_carlo_in, ppr, tea::tea_in,
    tea_plus::tea_plus_in, tea_plus_finalize, tea_plus_prepare, AccuracyTier, HkprError,
    HkprEstimate, HkprParams, QueryStats, QueryWorkspace, TeaPlusOptions, TeaPlusPrepared,
    TeaPlusWalkJob,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::conductance::MemberScratch;
use crate::sweep::{sweep_estimate_with, SweepResult};

/// Which HKPR estimator powers the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Method {
    /// TEA (Algorithm 3). Honors all of [`HkprParams`].
    Tea,
    /// TEA+ (Algorithm 5) — the paper's recommendation.
    TeaPlus,
    /// Pure Monte-Carlo (§3); optionally capped walk count.
    MonteCarlo {
        /// Cap on the number of walks (`None` = the published count).
        max_walks: Option<u64>,
    },
    /// ClusterHKPR (Chung–Simpson) with its own accuracy knob `eps`.
    ClusterHkpr {
        /// Relative/absolute error knob (paper sweeps 0.005–0.35).
        eps: f64,
        /// Cap on the number of walks (`None` = the published count).
        max_walks: Option<u64>,
    },
    /// HK-Relax (Kloster–Gleich) with absolute error threshold `eps_a`.
    HkRelax {
        /// Absolute error threshold (paper sweeps 1e-8–1e-4).
        eps_a: f64,
    },
    /// Exact HKPR by dense power iteration (ground truth; O(k_max * m)).
    Exact,
    /// PR-Nibble-style PPR forward push + sweep (Andersen–Chung–Lang) —
    /// the personalized-PageRank predecessor the paper's §6 situates
    /// HKPR against. `alpha` is the teleport probability.
    PrNibble {
        /// Teleport probability of the PPR walk.
        alpha: f64,
        /// Push threshold (smaller = more accurate, slower).
        rmax: f64,
    },
    /// FORA (forward push + walks) over PPR. `omega` is derived from the
    /// shared [`HkprParams`] accuracy knobs so HKPR/PPR comparisons use a
    /// symmetric budget.
    Fora {
        /// Teleport probability of the PPR walk.
        alpha: f64,
    },
}

impl Method {
    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Tea => "TEA",
            Method::TeaPlus => "TEA+",
            Method::MonteCarlo { .. } => "Monte-Carlo",
            Method::ClusterHkpr { .. } => "ClusterHKPR",
            Method::HkRelax { .. } => "HK-Relax",
            Method::Exact => "Exact",
            Method::PrNibble { .. } => "PR-Nibble",
            Method::Fora { .. } => "FORA",
        }
    }
}

/// A local cluster plus everything measured on the way.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// Nodes of the minimum-conductance sweep prefix, ascending.
    pub cluster: Vec<NodeId>,
    /// Conductance of that prefix (1.0 when the sweep degenerates).
    pub conductance: f64,
    /// The underlying HKPR estimate.
    pub estimate: HkprEstimate,
    /// Cost counters from the estimator.
    pub stats: QueryStats,
    /// Size of the estimate's support (`|S*|`, the sweep's input size).
    pub support_size: usize,
}

impl ClusterResult {
    /// Whether two results are *byte-identical*: same cluster, same
    /// conductance bit pattern, same estimate support (node ids, value
    /// bits and offset-coefficient bits) and same cost counters. This is
    /// the equality the serving layer's cache guarantees between a cached
    /// hit and a cold recomputation, and what the determinism property
    /// tests assert — strictly stronger than `f64 ==`, which would accept
    /// `-0.0 == 0.0` drift.
    pub fn bitwise_eq(&self, other: &ClusterResult) -> bool {
        self.cluster == other.cluster
            && self.conductance.to_bits() == other.conductance.to_bits()
            && self.support_size == other.support_size
            && self.stats == other.stats
            && self.estimate.offset_coeff().to_bits() == other.estimate.offset_coeff().to_bits()
            && self.estimate.nnz() == other.estimate.nnz()
            && self
                .estimate
                .support()
                .zip(other.estimate.support())
                .all(|((u, x), (v, y))| u == v && x.to_bits() == y.to_bits())
    }

    /// Bytes held by this result (cluster members + estimate entries +
    /// struct overhead) — the unit the serving cache's byte budget counts.
    pub fn memory_bytes(&self) -> usize {
        self.cluster.capacity() * std::mem::size_of::<NodeId>()
            + self.estimate.memory_bytes()
            + std::mem::size_of::<Self>()
    }
}

/// Local clustering driver bound to a graph.
#[derive(Clone, Copy, Debug)]
pub struct LocalClusterer<'g> {
    graph: &'g Graph,
}

impl<'g> LocalClusterer<'g> {
    /// Bind to a graph.
    pub fn new(graph: &'g Graph) -> Self {
        LocalClusterer { graph }
    }

    /// Compute only the HKPR estimate (phase one), on a fresh workspace.
    pub fn estimate(
        &self,
        method: Method,
        seed: NodeId,
        params: &HkprParams,
        rng_seed: u64,
    ) -> Result<(HkprEstimate, QueryStats), HkprError> {
        THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => {
                self.estimate_in(method, seed, params, rng_seed, &mut scratch.workspace)
            }
            Err(_) => self.estimate_in(method, seed, params, rng_seed, &mut QueryWorkspace::new()),
        })
    }

    /// Compute only the HKPR estimate (phase one) on a reusable
    /// [`QueryWorkspace`] — the serving-loop entry point. The workspace's
    /// thread count controls TEA/TEA+/Monte-Carlo walk-phase parallelism.
    pub fn estimate_in(
        &self,
        method: Method,
        seed: NodeId,
        params: &HkprParams,
        rng_seed: u64,
        ws: &mut QueryWorkspace,
    ) -> Result<(HkprEstimate, QueryStats), HkprError> {
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let out = match method {
            Method::Tea => tea_in(self.graph, params, seed, None, &mut rng, ws)?,
            Method::TeaPlus => tea_plus_in(self.graph, params, seed, &mut rng, ws)?,
            Method::MonteCarlo { max_walks } => {
                monte_carlo_in(self.graph, params, seed, max_walks, &mut rng, ws)?
            }
            Method::ClusterHkpr { eps, max_walks } => {
                cluster_hkpr(self.graph, params.poisson(), seed, eps, max_walks, &mut rng)?
            }
            Method::HkRelax { eps_a } => {
                hk_relax(self.graph, params.poisson(), seed, eps_a)?.into()
            }
            Method::Exact => {
                params.validate_seed(seed)?;
                let rho = hkpr_core::exact_hkpr(self.graph, params.poisson(), seed);
                let mut est = HkprEstimate::new();
                for (v, &x) in rho.iter().enumerate() {
                    if x > 1e-15 {
                        est.add_mass(v as NodeId, x);
                    }
                }
                hkpr_core::TeaOutput {
                    estimate: est,
                    stats: QueryStats::default(),
                }
            }
            Method::PrNibble { alpha, rmax } => {
                let (reserve, _, pushes) = ppr::ppr_push(self.graph, seed, alpha, rmax)?;
                hkpr_core::TeaOutput {
                    estimate: HkprEstimate::from_values(reserve),
                    stats: QueryStats {
                        push_operations: pushes,
                        ..QueryStats::default()
                    },
                }
            }
            Method::Fora { alpha } => {
                // FORA's omega = (2 eps/3 + 2) ln(2/p_f) / (eps^2 delta),
                // built from the same knobs the HKPR methods use.
                let eps = params.eps_r();
                let omega = (2.0 * eps / 3.0 + 2.0) * (2.0 / params.p_f()).ln()
                    / (eps * eps * params.delta());
                ppr::fora(self.graph, seed, alpha, omega, &mut rng)?
            }
        };
        Ok((out.estimate, out.stats))
    }

    /// Anytime variant of [`estimate_in`](Self::estimate_in): TEA+ and
    /// Monte-Carlo run on the tiered refinement path
    /// ([`hkpr_core::anytime`]), so a cancellation fired mid-push or
    /// mid-walk stops refinement at the best reachable tier instead of
    /// erroring, and the returned [`AccuracyTier`] reports how far each
    /// phase got. Run to completion the output is bitwise identical to
    /// [`estimate_in`](Self::estimate_in). Methods without a tiered path
    /// fall through to the one-shot estimator and return `None` (they
    /// keep the all-or-nothing cancellation contract).
    ///
    /// `controls` threads the caller's refinement caps and push-tier
    /// observer through to the estimator; TEA+ honors all of it,
    /// Monte-Carlo (no push phase) honors `walk_tier_cap` only.
    pub fn estimate_anytime_in(
        &self,
        method: Method,
        seed: NodeId,
        params: &HkprParams,
        rng_seed: u64,
        controls: hkpr_core::AnytimeControls<'_>,
        ws: &mut QueryWorkspace,
    ) -> Result<(HkprEstimate, QueryStats, Option<AccuracyTier>), HkprError> {
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        match method {
            Method::TeaPlus => {
                let out = hkpr_core::tea_plus_anytime_in(
                    self.graph,
                    params,
                    seed,
                    hkpr_core::TeaPlusOptions::default(),
                    controls,
                    &mut rng,
                    ws,
                )?;
                Ok((out.estimate, out.stats, Some(out.achieved)))
            }
            Method::MonteCarlo { max_walks } => {
                let out = hkpr_core::monte_carlo_anytime_in(
                    self.graph,
                    params,
                    seed,
                    max_walks,
                    controls.walk_tier_cap,
                    &mut rng,
                    ws,
                )?;
                Ok((out.estimate, out.stats, Some(out.achieved)))
            }
            _ => self
                .estimate_in(method, seed, params, rng_seed, ws)
                .map(|(estimate, stats)| (estimate, stats, None)),
        }
    }

    /// Full query: estimate + sweep (phase two), on a fresh workspace.
    ///
    /// A degenerate sweep (empty support, e.g. an isolated seed) falls
    /// back to the singleton `{seed}` with conductance 1.0 so callers
    /// always get a cluster containing the seed.
    pub fn run(
        &self,
        method: Method,
        seed: NodeId,
        params: &HkprParams,
        rng_seed: u64,
    ) -> Result<ClusterResult, HkprError> {
        THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.run_in(method, seed, params, rng_seed, &mut scratch),
            Err(_) => self.run_in(method, seed, params, rng_seed, &mut QueryScratch::new()),
        })
    }

    /// Full query on reusable scratch: the estimator's [`QueryWorkspace`]
    /// plus the sweep's ranking buffer. One [`QueryScratch`] per serving
    /// worker makes the whole query path allocation-free after warm-up.
    ///
    /// Exactly `estimate_in` followed by [`sweep_in`](Self::sweep_in) —
    /// serving layers that need per-phase timing call the two halves
    /// themselves and are guaranteed the same results.
    pub fn run_in(
        &self,
        method: Method,
        seed: NodeId,
        params: &HkprParams,
        rng_seed: u64,
        scratch: &mut QueryScratch,
    ) -> Result<ClusterResult, HkprError> {
        let (estimate, stats) =
            self.estimate_in(method, seed, params, rng_seed, &mut scratch.workspace)?;
        Ok(self.sweep_in(seed, estimate, stats, scratch))
    }

    /// Phase two of a query: sweep an estimate into a [`ClusterResult`]
    /// on reusable scratch. A degenerate sweep (empty support) falls back
    /// to the singleton `{seed}` with conductance 1.0.
    pub fn sweep_in(
        &self,
        seed: NodeId,
        estimate: HkprEstimate,
        stats: QueryStats,
        scratch: &mut QueryScratch,
    ) -> ClusterResult {
        match sweep_estimate_with(
            self.graph,
            &estimate,
            &mut scratch.ranked,
            &mut scratch.member,
        ) {
            Some(SweepResult {
                cluster,
                conductance,
                support_size,
                ..
            }) => ClusterResult {
                cluster,
                conductance,
                estimate,
                stats,
                support_size,
            },
            None => ClusterResult {
                cluster: vec![seed],
                conductance: 1.0,
                estimate,
                stats,
                support_size: 0,
            },
        }
    }

    /// Distributed TEA+ phase one: run push + residue reduction locally
    /// and stop at the walk boundary. Pairs with
    /// [`finalize_tea_plus`](Self::finalize_tea_plus); composing the two
    /// around a walk execution that deposits the same per-node endpoint
    /// totals as the planned kernel reproduces
    /// [`run_in`](Self::run_in)`(Method::TeaPlus, ..)` bitwise (for the
    /// workspace's configured walk kernel). This is the seed-owning
    /// shard's entry point.
    pub fn prepare_tea_plus(
        &self,
        seed: NodeId,
        params: &HkprParams,
        rng_seed: u64,
        ws: &mut QueryWorkspace,
    ) -> Result<TeaPlusPrepared, HkprError> {
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        tea_plus_prepare(
            self.graph,
            params,
            seed,
            TeaPlusOptions::default(),
            &mut rng,
            ws,
        )
    }

    /// Distributed TEA+ phase three: fold externally merged walk endpoint
    /// counts into the prepared query and sweep, completing what
    /// [`prepare_tea_plus`](Self::prepare_tea_plus) started.
    pub fn finalize_tea_plus(
        &self,
        seed: NodeId,
        params: &HkprParams,
        job: &TeaPlusWalkJob,
        merged_counts: &[(NodeId, u64)],
        steps: u64,
        scratch: &mut QueryScratch,
    ) -> ClusterResult {
        let out = tea_plus_finalize(
            self.graph,
            params,
            TeaPlusOptions::default(),
            job,
            merged_counts,
            steps,
            &mut scratch.workspace,
        );
        self.sweep_in(seed, out.estimate, out.stats, scratch)
    }
}

thread_local! {
    /// Per-thread cached scratch backing [`LocalClusterer::run`], so
    /// one-shot callers get batch-serving speed after the first query.
    static THREAD_SCRATCH: std::cell::RefCell<QueryScratch> =
        std::cell::RefCell::new(QueryScratch::new());
}

/// Reusable per-worker scratch for [`LocalClusterer::run_in`]: the dense
/// estimator workspace plus the sweep's ranking buffer.
#[derive(Clone, Debug, Default)]
pub struct QueryScratch {
    /// Estimator workspace (dense push/walk buffers).
    pub workspace: QueryWorkspace,
    /// Sweep ranking buffer.
    ranked: Vec<(NodeId, f64)>,
    /// Sweep membership buffer (epoch-stamped).
    member: MemberScratch,
}

impl QueryScratch {
    /// Fresh scratch (single-threaded walk phase).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh scratch with a walk-phase thread count.
    pub fn with_threads(threads: usize) -> Self {
        QueryScratch {
            workspace: QueryWorkspace::with_threads(threads),
            ranked: Vec::new(),
            member: MemberScratch::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_graph::gen::planted_partition;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn planted() -> hk_graph::gen::PlantedPartition {
        let mut rng = SmallRng::seed_from_u64(3);
        planted_partition(4, 40, 0.35, 0.01, &mut rng).unwrap()
    }

    #[test]
    fn every_method_returns_a_cluster_containing_structure() {
        let pp = planted();
        let g = &pp.graph;
        let params = HkprParams::builder(g)
            .t(5.0)
            .delta(1e-4)
            .p_f(0.01)
            .build()
            .unwrap();
        let clusterer = LocalClusterer::new(g);
        let methods = [
            Method::Tea,
            Method::TeaPlus,
            Method::MonteCarlo {
                max_walks: Some(100_000),
            },
            Method::ClusterHkpr {
                eps: 0.05,
                max_walks: Some(100_000),
            },
            Method::HkRelax { eps_a: 1e-5 },
            Method::Exact,
            Method::PrNibble {
                alpha: 0.15,
                rmax: 1e-7,
            },
            Method::Fora { alpha: 0.15 },
        ];
        for m in methods {
            let res = clusterer.run(m, 0, &params, 7).unwrap();
            assert!(
                !res.cluster.is_empty(),
                "{} returned empty cluster",
                m.label()
            );
            assert!(res.conductance <= 1.0);
            // Seed's community is block 0 = nodes 0..40 and should
            // dominate the recovered cluster.
            let inside = res.cluster.iter().filter(|&&v| v < 40).count();
            assert!(
                inside * 2 > res.cluster.len(),
                "{}: cluster mostly outside the seed community",
                m.label()
            );
            // Good methods find a cut far below 0.5 here.
            assert!(
                res.conductance < 0.6,
                "{}: conductance {} too high",
                m.label(),
                res.conductance
            );
        }
    }

    #[test]
    fn exact_recovers_planted_block_cleanly() {
        let pp = planted();
        let g = &pp.graph;
        let params = HkprParams::builder(g).t(5.0).build().unwrap();
        let res = LocalClusterer::new(g)
            .run(Method::Exact, 5, &params, 0)
            .unwrap();
        let score = crate::metrics::f1_score(&res.cluster, &pp.communities[0]);
        assert!(score.f1 > 0.8, "F1 {} too low", score.f1);
    }

    #[test]
    fn isolated_seed_falls_back_to_singleton() {
        let mut b = hk_graph::GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_nodes(3);
        let g = b.build();
        let params = HkprParams::builder(&g).build().unwrap();
        let res = LocalClusterer::new(&g)
            .run(Method::TeaPlus, 2, &params, 1)
            .unwrap();
        assert_eq!(res.cluster, vec![2]);
        assert_eq!(res.conductance, 1.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Method::Tea.label(), "TEA");
        assert_eq!(Method::TeaPlus.label(), "TEA+");
        assert_eq!(
            Method::MonteCarlo { max_walks: None }.label(),
            "Monte-Carlo"
        );
        assert_eq!(
            Method::ClusterHkpr {
                eps: 0.1,
                max_walks: None
            }
            .label(),
            "ClusterHKPR"
        );
        assert_eq!(Method::HkRelax { eps_a: 0.1 }.label(), "HK-Relax");
        assert_eq!(Method::Exact.label(), "Exact");
        assert_eq!(
            Method::PrNibble {
                alpha: 0.1,
                rmax: 1e-6
            }
            .label(),
            "PR-Nibble"
        );
        assert_eq!(Method::Fora { alpha: 0.1 }.label(), "FORA");
    }

    #[test]
    fn errors_propagate() {
        let pp = planted();
        let params = HkprParams::builder(&pp.graph).build().unwrap();
        let clusterer = LocalClusterer::new(&pp.graph);
        assert!(clusterer.run(Method::TeaPlus, 10_000, &params, 0).is_err());
        assert!(clusterer
            .run(Method::HkRelax { eps_a: 0.0 }, 0, &params, 0)
            .is_err());
    }

    #[test]
    fn distributed_prepare_exchange_finalize_matches_run_in_bitwise() {
        use hkpr_core::{DriveOutcome, ExchangeSession, TeaPlusPrepared, WalkKernel};

        let pp = planted();
        let g = &pp.graph;
        let params = HkprParams::builder(g)
            .t(5.0)
            .eps_r(0.5)
            .delta(1e-4)
            .p_f(1e-3)
            .build()
            .unwrap();
        let clusterer = LocalClusterer::new(g);
        for (seed, rng_seed) in [(0u32, 0u64), (17, 5), (63, 99)] {
            let mut oracle_scratch = QueryScratch::new();
            oracle_scratch
                .workspace
                .set_walk_kernel(WalkKernel::Presampled);
            let want = clusterer
                .run_in(
                    Method::TeaPlus,
                    seed,
                    &params,
                    rng_seed,
                    &mut oracle_scratch,
                )
                .unwrap();

            let mut scratch = QueryScratch::new();
            scratch.workspace.set_walk_kernel(WalkKernel::Presampled);
            let prepared = clusterer
                .prepare_tea_plus(seed, &params, rng_seed, &mut scratch.workspace)
                .unwrap();
            let got = match prepared {
                TeaPlusPrepared::Done(out) => {
                    clusterer.sweep_in(seed, out.estimate, out.stats, &mut scratch)
                }
                TeaPlusPrepared::NeedWalks(job) => {
                    let entries = scratch.workspace.walk_entries().to_vec();
                    let weights = scratch.workspace.walk_weights().to_vec();
                    let mut session = ExchangeSession::new(
                        g,
                        params.poisson(),
                        &entries,
                        &weights,
                        job.nr,
                        job.master_seed,
                    )
                    .unwrap();
                    for c in 0..session.num_chunks() {
                        let mut cursor = session.initial_cursor(c);
                        assert_eq!(
                            session.drive(&mut cursor, |_| true),
                            DriveOutcome::Completed
                        );
                    }
                    let counts = session.sparse_counts();
                    clusterer.finalize_tea_plus(
                        seed,
                        &params,
                        &job,
                        &counts,
                        session.steps(),
                        &mut scratch,
                    )
                }
            };
            assert!(
                want.bitwise_eq(&got),
                "seed={seed} rng_seed={rng_seed} diverged"
            );
        }
    }
}

//! End-to-end conformance of the sharded tier: a coordinator driving
//! `N ∈ {1, 2, 4}` real `hk-shardd` processes over loopback TCP must
//! produce answers **bitwise identical** to the single-process
//! `Presampled` batch path on the same committed snapshot — same
//! clusters, same conductance bits, same estimate bits, same stats.
//!
//! This is also the CI shard smoke: it spawns the actual daemon binary
//! (via `CARGO_BIN_EXE_hk-shardd`), parses its readiness line, and
//! exercises the full Begin/Exec/Step/Collect/Finish protocol over the
//! wire, frontier-exchange rounds included.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use hk_cluster::{LocalClusterer, Method};
use hk_graph::Graph;
use hk_serve::run_batch_with_kernel;
use hk_shard::{QueryKnobs, ShardCoordinator};
use hkpr_core::{HkprParams, WalkKernel};

const RNG_SEED: u64 = 11;

fn snapshot_path() -> String {
    format!("{}/../../data/3d-grid.x4.hkg", env!("CARGO_MANIFEST_DIR"))
}

/// A spawned shard daemon, killed on drop so a failing assert cannot
/// leak processes.
struct Shard {
    child: Child,
    port: u16,
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn spawn_fleet(shards: usize) -> Vec<Shard> {
    (0..shards)
        .map(|i| {
            let mut child = Command::new(env!("CARGO_BIN_EXE_hk-shardd"))
                .args([
                    "--snapshot",
                    &snapshot_path(),
                    "--shard-id",
                    &i.to_string(),
                    "--shards",
                    &shards.to_string(),
                    "--port",
                    "0",
                ])
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn hk-shardd");
            let stdout = child.stdout.take().expect("stdout piped");
            let mut line = String::new();
            BufReader::new(stdout)
                .read_line(&mut line)
                .expect("readiness line");
            let port = line
                .trim()
                .strip_prefix("LISTENING ")
                .and_then(|p| p.parse().ok())
                .unwrap_or_else(|| panic!("unexpected readiness line: {line:?}"));
            Shard { child, port }
        })
        .collect()
}

/// Valid query seeds spread across the node range, so different shard
/// counts route them to different owners.
fn pick_seeds(graph: &Graph, params: &HkprParams, want: usize) -> Vec<u32> {
    let n = graph.num_nodes() as u32;
    let mut seeds = Vec::new();
    for k in 0..want as u32 {
        let mut cand = k * n / want as u32;
        while params.validate_seed(cand).is_err() {
            cand = (cand + 1) % n;
        }
        seeds.push(cand);
    }
    seeds
}

#[test]
fn shard_fleets_match_single_process_bitwise() {
    let graph = hk_graph::io::load_binary(snapshot_path()).expect("load committed snapshot");
    // t = 10 pushes past the budget on the committed 3d-grid snapshot,
    // so every seed gets a real walk phase (~20k walks each) — small
    // enough for debug CI, large enough to force frontier exchanges.
    let params = HkprParams::builder(&graph)
        .t(10.0)
        .eps_r(0.5)
        .delta(1e-3)
        .p_f(1e-3)
        .c(2.5)
        .build()
        .unwrap();
    let seeds = pick_seeds(&graph, &params, 5);
    let clusterer = LocalClusterer::new(&graph);
    let oracle = run_batch_with_kernel(
        &clusterer,
        Method::TeaPlus,
        &seeds,
        &params,
        RNG_SEED,
        1,
        WalkKernel::Presampled,
    );
    // At least one seed must exercise the walk phase, or the exchange
    // protocol goes untested.
    assert!(
        oracle
            .iter()
            .any(|r| r.as_ref().unwrap().stats.random_walks > 0),
        "all oracle queries early-exited; pick different params"
    );

    for shards in [1usize, 2, 4] {
        let fleet = spawn_fleet(shards);
        let addrs: Vec<(&str, u16)> = fleet.iter().map(|s| ("127.0.0.1", s.port)).collect();
        let mut coord = ShardCoordinator::connect(&addrs).expect("handshake");
        assert_eq!(coord.shards(), shards);
        assert_eq!(coord.fingerprint(), graph.fingerprint());
        let got = coord
            .run_batch(&seeds, QueryKnobs::from_params(&params), RNG_SEED)
            .expect("sharded batch");
        for (i, (wire, want)) in got.iter().zip(&oracle).enumerate() {
            let want = want.as_ref().expect("oracle query failed");
            assert!(
                wire.bitwise_matches(want),
                "seed {} diverged from the single-process oracle at N={shards}:\n\
                 wire cluster {} nodes, conductance {:?}; \
                 oracle cluster {} nodes, conductance {:?}",
                seeds[i],
                wire.cluster.len(),
                wire.conductance,
                want.cluster.len(),
                want.conductance,
            );
        }
        coord.shutdown();
        for mut shard in fleet {
            let status = shard.child.wait().expect("wait shard");
            assert!(status.success(), "shard exited with {status}");
        }
    }
}

#[test]
fn remote_errors_are_typed_not_fatal() {
    let fleet = spawn_fleet(2);
    let addrs: Vec<(&str, u16)> = fleet.iter().map(|s| ("127.0.0.1", s.port)).collect();
    let mut coord = ShardCoordinator::connect(&addrs).expect("handshake");
    let graph = hk_graph::io::load_binary(snapshot_path()).unwrap();
    let params = HkprParams::builder(&graph).build().unwrap();
    let knobs = QueryKnobs::from_params(&params);
    // An out-of-range seed is a remote query error...
    let err = coord
        .run_query(u32::MAX - 1, knobs, RNG_SEED)
        .expect_err("invalid seed must fail");
    assert!(
        matches!(err, hk_shard::ShardError::Remote(_)),
        "expected a typed remote error, got {err:?}"
    );
    // ...and the connection survives it: a valid query still works.
    let seed = {
        let mut s = 0u32;
        while params.validate_seed(s).is_err() {
            s += 1;
        }
        s
    };
    coord
        .run_query(seed, knobs, RNG_SEED)
        .expect("fleet must stay usable after a query error");
    coord.shutdown();
}

//! The shard process: one node-range slice of a snapshot behind a
//! loopback TCP socket.
//!
//! A shard answers the coordinator's frames sequentially — the protocol
//! is strictly request/reply per shard, with the walk phase a nested
//! `Exec → (Step … Step) → Collect` exchange. Every shard loads the full
//! `.hkg` snapshot (read-only; under `mmap` the N same-host processes
//! share one page-cache copy and untouched adjacency pages of non-owned
//! rows stay non-resident) but only *walks through* adjacency rows of
//! nodes inside its [`NodePartition`] range: a walk that reaches a
//! foreign row parks and is shipped onward by the coordinator.
//!
//! Query errors (bad seed, bad knobs) travel as `Error` frames and leave
//! the connection alive; transport errors drop the connection and the
//! shard returns to `accept`, so a coordinator can reconnect.

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};

use hk_cluster::{ClusterResult, LocalClusterer, QueryScratch};
use hk_gateway::frame::{read_frame, FrameLimits, FrameParser};
use hk_graph::{Graph, NodePartition};
use hkpr_core::{
    DriveOutcome, ExchangeSession, HkprError, HkprParams, ShardCursor, TeaPlusPrepared,
    TeaPlusWalkJob, WalkKernel,
};

use crate::proto::{
    Begin, Exec, Finish, Msg, ProtoError, QueryKnobs, ShardCounts, WalkSpec, WireResult,
};

/// Rebuild query parameters from wire knobs, bit-for-bit the same as the
/// coordinator's caller built them (the builder's derived quantities are
/// deterministic functions of the knobs and the graph).
pub fn build_params(graph: &Graph, knobs: &QueryKnobs) -> Result<HkprParams, HkprError> {
    HkprParams::builder(graph)
        .t(knobs.t)
        .eps_r(knobs.eps_r)
        .delta(knobs.delta)
        .p_f(knobs.p_f)
        .c(knobs.hop_c)
        .build()
}

impl QueryKnobs {
    /// Extract the wire knobs from built parameters.
    pub fn from_params(params: &HkprParams) -> QueryKnobs {
        QueryKnobs {
            t: params.t(),
            eps_r: params.eps_r(),
            delta: params.delta(),
            p_f: params.p_f(),
            hop_c: params.c(),
        }
    }
}

/// A prepared query parked between `Begin` and `Finish` on the owner
/// shard (the walk phase runs in between, on every shard).
struct Pending {
    seed: u32,
    params: HkprParams,
    job: TeaPlusWalkJob,
}

/// Why a connection loop ended.
enum ConnExit {
    /// Peer closed or transport failed: go back to `accept`.
    Disconnect,
    /// Explicit `Shutdown` frame: exit the serve loop.
    Shutdown,
}

/// Serve shard `shard_id` of `shards` over `listener`, blocking until a
/// coordinator sends `Shutdown`. Handles one coordinator connection at a
/// time; a dropped connection returns the shard to `accept`.
pub fn serve(
    listener: &TcpListener,
    graph: &Graph,
    shard_id: usize,
    shards: usize,
) -> io::Result<()> {
    assert!(shard_id < shards, "shard_id out of range");
    let partition = NodePartition::volume_balanced(graph, shards);
    loop {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true).ok();
        match serve_conn(stream, graph, &partition, shard_id, shards) {
            Ok(ConnExit::Shutdown) => return Ok(()),
            Ok(ConnExit::Disconnect) => {}
            Err(e) => eprintln!("shard {shard_id}: connection error: {e}"),
        }
    }
}

fn send(stream: &mut TcpStream, msg: &Msg) -> io::Result<()> {
    stream.write_all(&msg.to_frame_bytes())
}

fn send_error(stream: &mut TcpStream, msg: String) -> io::Result<()> {
    send(stream, &Msg::Error(msg))
}

/// Read and decode the next message; `Ok(None)` is clean EOF. A frame or
/// protocol malformation is an `InvalidData` transport error — after one,
/// stream alignment is untrustworthy, so the connection dies.
fn recv(stream: &mut TcpStream, parser: &mut FrameParser) -> io::Result<Option<Msg>> {
    let Some(frame) = read_frame(stream, parser)? else {
        return Ok(None);
    };
    Msg::decode(&frame)
        .map(Some)
        .map_err(|e: ProtoError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn serve_conn(
    mut stream: TcpStream,
    graph: &Graph,
    partition: &NodePartition,
    shard_id: usize,
    shards: usize,
) -> io::Result<ConnExit> {
    let clusterer = LocalClusterer::new(graph);
    let mut parser = FrameParser::new(FrameLimits::default());
    // One scratch for the owner-side push/finalize work. The walk kernel
    // matters: the sharded walk engine mirrors `Presampled`, and the
    // kernel is part of the plan's RNG contract.
    let mut scratch = QueryScratch::new();
    scratch.workspace.set_walk_kernel(WalkKernel::Presampled);
    let mut pending: Option<Pending> = None;

    loop {
        let Some(msg) = recv(&mut stream, &mut parser)? else {
            return Ok(ConnExit::Disconnect);
        };
        match msg {
            Msg::Hello => {
                let starts = partition.starts().to_vec();
                send(
                    &mut stream,
                    &Msg::HelloAck {
                        shard_id: shard_id as u32,
                        shards: shards as u32,
                        n: graph.num_nodes() as u32,
                        fingerprint: graph.fingerprint(),
                        starts,
                    },
                )?;
            }
            Msg::Begin(begin) => {
                pending = None;
                match handle_begin(graph, &clusterer, partition, shard_id, &begin, &mut scratch) {
                    Ok(BeginOutcome::Done(result)) => send(
                        &mut stream,
                        &Msg::BeginDone(WireResult::from_result(&result)),
                    )?,
                    Ok(BeginOutcome::Walk(p, spec)) => {
                        pending = Some(*p);
                        send(&mut stream, &Msg::BeginWalk(spec))?;
                    }
                    Err(e) => send_error(&mut stream, e)?,
                }
            }
            Msg::Exec(exec) => {
                walk_phase(&mut stream, &mut parser, graph, partition, shard_id, &exec)?;
            }
            Msg::Finish(fin) => match pending.take() {
                Some(p) => {
                    let result = finish(&clusterer, &p, &fin, &mut scratch);
                    send(&mut stream, &Msg::Done(WireResult::from_result(&result)))?;
                }
                None => send_error(&mut stream, "finish without a pending query".into())?,
            },
            Msg::Shutdown => return Ok(ConnExit::Shutdown),
            other => {
                send_error(
                    &mut stream,
                    format!("unexpected frame kind {:#04x} at top level", other.kind()),
                )?;
            }
        }
    }
}

enum BeginOutcome {
    Done(ClusterResult),
    // Boxed: `Pending` holds full `HkprParams` (Poisson tables), far
    // larger than the `Done` variant.
    Walk(Box<Pending>, WalkSpec),
}

fn handle_begin(
    graph: &Graph,
    clusterer: &LocalClusterer<'_>,
    partition: &NodePartition,
    shard_id: usize,
    begin: &Begin,
    scratch: &mut QueryScratch,
) -> Result<BeginOutcome, String> {
    if !partition.owns(shard_id, begin.seed) {
        return Err(format!(
            "seed {} belongs to shard {}, not {shard_id}",
            begin.seed,
            partition.owner(begin.seed)
        ));
    }
    let params = build_params(graph, &begin.knobs).map_err(|e| e.to_string())?;
    params
        .validate_seed(begin.seed)
        .map_err(|e| e.to_string())?;
    let prepared = clusterer
        .prepare_tea_plus(begin.seed, &params, begin.rng_seed, &mut scratch.workspace)
        .map_err(|e| e.to_string())?;
    Ok(match prepared {
        TeaPlusPrepared::Done(out) => {
            BeginOutcome::Done(clusterer.sweep_in(begin.seed, out.estimate, out.stats, scratch))
        }
        TeaPlusPrepared::NeedWalks(job) => {
            let spec = WalkSpec {
                nr: job.nr,
                master_seed: job.master_seed,
                entries: scratch.workspace.walk_entries().to_vec(),
                weights: scratch.workspace.walk_weights().to_vec(),
            };
            BeginOutcome::Walk(
                Box::new(Pending {
                    seed: begin.seed,
                    params,
                    job,
                }),
                spec,
            )
        }
    })
}

fn finish(
    clusterer: &LocalClusterer<'_>,
    p: &Pending,
    fin: &Finish,
    scratch: &mut QueryScratch,
) -> ClusterResult {
    clusterer.finalize_tea_plus(p.seed, &p.params, &p.job, &fin.counts, fin.steps, scratch)
}

/// The nested walk phase: build the replicated plan, seat this shard's
/// initial cursors, then answer `Step` rounds until `Collect`.
fn walk_phase(
    stream: &mut TcpStream,
    parser: &mut FrameParser,
    graph: &Graph,
    partition: &NodePartition,
    shard_id: usize,
    exec: &Exec,
) -> io::Result<()> {
    let params = match build_params(graph, &exec.knobs) {
        Ok(p) => p,
        Err(e) => return send_error(stream, format!("exec knobs: {e}")),
    };
    let mut session = match ExchangeSession::new(
        graph,
        params.poisson(),
        &exec.spec.entries,
        &exec.spec.weights,
        exec.spec.nr,
        exec.spec.master_seed,
    ) {
        Ok(s) => s,
        Err(e) => return send_error(stream, format!("exec plan: {e}")),
    };
    let mut queue: Vec<ShardCursor> = (0..session.num_chunks())
        .filter(|&c| partition.owns(shard_id, session.initial_owner_node(c)))
        .map(|c| session.initial_cursor(c))
        .collect();
    send(
        stream,
        &Msg::ExecAck {
            chunks: session.num_chunks() as u32,
            resident: queue.len() as u32,
        },
    )?;
    loop {
        let Some(msg) = recv(stream, parser)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof mid walk phase",
            ));
        };
        match msg {
            Msg::Step { cursors } => {
                queue.extend(cursors);
                let mut parked = Vec::new();
                for mut cur in queue.drain(..) {
                    match session.drive(&mut cur, |v| partition.owns(shard_id, v)) {
                        DriveOutcome::Completed => {}
                        DriveOutcome::Parked(node) => {
                            parked.push((partition.owner(node) as u32, cur));
                        }
                    }
                }
                send(
                    stream,
                    &Msg::StepDone {
                        completed: session.completed_walks(),
                        parked,
                    },
                )?;
            }
            Msg::Collect => {
                return send(
                    stream,
                    &Msg::Counts(ShardCounts {
                        steps: session.steps(),
                        completed: session.completed_walks(),
                        counts: session.sparse_counts(),
                    }),
                );
            }
            other => {
                return send_error(
                    stream,
                    format!("unexpected frame kind {:#04x} in walk phase", other.kind()),
                );
            }
        }
    }
}

#![warn(missing_docs)]

//! # hk-shard
//!
//! Same-host multi-process sharded serving for TEA+ queries: N shard
//! processes each own a contiguous node range of one `.hkg` snapshot
//! (partitioned by [`hk_graph::NodePartition::volume_balanced`]) and a
//! graph-free [`ShardCoordinator`] routes queries and relays walk
//! cursors between them over loopback TCP.
//!
//! The wire stack reuses the gateway's byte framing
//! ([`hk_gateway::frame`]: `HKS1` magic, length prefix, CRC-32) with the
//! message layer in [`proto`]. The walk distribution itself is
//! [`hkpr_core::ExchangeSession`]: the push phase runs on the seed's
//! owner shard, the planned walk chunks execute as migrating cursors
//! that park at partition boundaries *before* consuming RNG, and the
//! coordinator's batched frontier-exchange rounds ship parked cursors to
//! their owners until the phase runs dry. Because parking is RNG-neutral
//! and endpoint counts are integers, the distributed result is **bitwise
//! identical** to a single-process run with
//! [`hkpr_core::WalkKernel::Presampled`] — for any shard count,
//! including `N = 1`.
//!
//! Process layout: `src/bin/hk_shardd.rs` is the shard daemon
//! (`hk-shardd --snapshot g.hkg --shard-id 0 --shards 2 --port 0`);
//! the coordinator lives in-process with whatever is driving the fleet
//! (a test, `serve_bench --shard`, or the CI smoke script).

pub mod coordinator;
pub mod proto;
pub mod shard;

pub use coordinator::{ShardCoordinator, ShardError};
pub use proto::{Msg, ProtoError, QueryKnobs, WireResult};
pub use shard::{build_params, serve};

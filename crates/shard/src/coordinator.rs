//! The graph-free coordinator: routes queries to owner shards and runs
//! the frontier-exchange rounds.
//!
//! The coordinator holds one connection per shard (star topology — shards
//! never talk to each other; parked cursors route through here) and no
//! graph state beyond what `HelloAck` reports: node count, fingerprint
//! and the partition boundaries. A query is five phases:
//!
//! 1. `Begin` to the seed's owner shard, which runs push + residue
//!    reduction over its full snapshot copy. Early-exit queries finish
//!    here (`BeginDone`).
//! 2. `Exec` broadcast of the returned [`WalkSpec`]: every shard builds
//!    the identical chunk plan and seats the initial cursors it owns.
//! 3. `Step` rounds: each round ships every cursor parked toward a shard
//!    in one batch, and collects the cursors that parked during the
//!    round. Rounds repeat while *any* shard parked anything; a round
//!    with zero parks everywhere means every chunk ran to completion.
//! 4. `Collect`: each shard reports its walk steps and sparse endpoint
//!    counts. Integer counts are merge-order-independent, so the
//!    coordinator simply concatenates.
//! 5. `Finish` to the owner shard: finalize + sweep, `Done` carries the
//!    [`WireResult`].

use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use hk_gateway::frame::{read_frame, FrameLimits, FrameParser};
use hkpr_core::ShardCursor;

use crate::proto::{Begin, Exec, Finish, Msg, ProtoError, QueryKnobs, WireResult};

/// Coordinator-side failure.
#[derive(Debug)]
pub enum ShardError {
    /// Transport failure on a shard connection.
    Io(io::Error),
    /// A shard sent a well-framed but malformed body.
    Proto(ProtoError),
    /// A shard reported a query error (`Error` frame).
    Remote(String),
    /// A shard violated the protocol (wrong message, inconsistent
    /// topology, bad routing).
    Protocol(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard transport: {e}"),
            ShardError::Proto(e) => write!(f, "shard protocol decode: {e}"),
            ShardError::Remote(msg) => write!(f, "shard error: {msg}"),
            ShardError::Protocol(msg) => write!(f, "shard protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> ShardError {
        ShardError::Io(e)
    }
}

impl From<ProtoError> for ShardError {
    fn from(e: ProtoError) -> ShardError {
        ShardError::Proto(e)
    }
}

struct Conn {
    stream: TcpStream,
    parser: FrameParser,
}

impl Conn {
    fn send(&mut self, msg: &Msg) -> Result<(), ShardError> {
        self.stream.write_all(&msg.to_frame_bytes())?;
        Ok(())
    }

    /// Receive one message; EOF and `Error` frames are typed failures.
    fn recv(&mut self) -> Result<Msg, ShardError> {
        let Some(frame) = read_frame(&mut self.stream, &mut self.parser)? else {
            return Err(ShardError::Protocol("shard closed the connection".into()));
        };
        match Msg::decode(&frame)? {
            Msg::Error(msg) => Err(ShardError::Remote(msg)),
            msg => Ok(msg),
        }
    }
}

/// A connected shard fleet, ready to run queries.
pub struct ShardCoordinator {
    conns: Vec<Conn>,
    n: u32,
    fingerprint: u64,
    starts: Vec<u32>,
}

impl ShardCoordinator {
    /// Connect to one shard per address (index = shard id), handshake,
    /// and cross-check that every shard reports the same snapshot
    /// (fingerprint, node count) and partition.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A]) -> Result<ShardCoordinator, ShardError> {
        let mut conns = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true).ok();
            conns.push(Conn {
                stream,
                parser: FrameParser::new(FrameLimits::default()),
            });
        }
        let mut topology: Option<(u32, u64, Vec<u32>)> = None;
        for (i, conn) in conns.iter_mut().enumerate() {
            conn.send(&Msg::Hello)?;
            match conn.recv()? {
                Msg::HelloAck {
                    shard_id,
                    shards,
                    n,
                    fingerprint,
                    starts,
                } => {
                    if shard_id as usize != i || shards as usize != addrs.len() {
                        return Err(ShardError::Protocol(format!(
                            "shard at index {i} identifies as {shard_id}/{shards}, \
                             expected {i}/{}",
                            addrs.len()
                        )));
                    }
                    let ok = starts.len() == shards as usize + 1
                        && starts.first() == Some(&0)
                        && starts.last() == Some(&n)
                        && starts.windows(2).all(|w| w[0] <= w[1]);
                    if !ok {
                        return Err(ShardError::Protocol(format!(
                            "shard {i} reports a malformed partition {starts:?}"
                        )));
                    }
                    match &topology {
                        None => topology = Some((n, fingerprint, starts)),
                        Some((n0, fp0, starts0)) => {
                            if *n0 != n || *fp0 != fingerprint || *starts0 != starts {
                                return Err(ShardError::Protocol(format!(
                                    "shard {i} disagrees on snapshot or partition \
                                     (fingerprint {fingerprint:#x} vs {fp0:#x})"
                                )));
                            }
                        }
                    }
                }
                other => {
                    return Err(ShardError::Protocol(format!(
                        "expected HelloAck, got kind {:#04x}",
                        other.kind()
                    )))
                }
            }
        }
        let (n, fingerprint, starts) =
            topology.ok_or_else(|| ShardError::Protocol("no shards".into()))?;
        Ok(ShardCoordinator {
            conns,
            n,
            fingerprint,
            starts,
        })
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.conns.len()
    }

    /// Node count of the served snapshot.
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Fingerprint of the served snapshot.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The shard owning `node`'s adjacency row. Out-of-range nodes clamp
    /// to the last shard, which rejects them with a typed error — the
    /// coordinator itself stays graph-free and does not validate seeds.
    pub fn owner(&self, node: u32) -> usize {
        self.starts
            .partition_point(|&s| s <= node)
            .saturating_sub(1)
            .min(self.conns.len() - 1)
    }

    /// Run one TEA+ query across the fleet. Bitwise identical to the
    /// single-process `Presampled` path for the same
    /// `(seed, params, rng_seed)`.
    pub fn run_query(
        &mut self,
        seed: u32,
        knobs: QueryKnobs,
        rng_seed: u64,
    ) -> Result<WireResult, ShardError> {
        let owner = self.owner(seed);
        self.conns[owner].send(&Msg::Begin(Begin {
            seed,
            rng_seed,
            knobs,
        }))?;
        let spec = match self.conns[owner].recv()? {
            Msg::BeginDone(result) => return Ok(result),
            Msg::BeginWalk(spec) => spec,
            other => {
                return Err(ShardError::Protocol(format!(
                    "expected BeginDone/BeginWalk, got kind {:#04x}",
                    other.kind()
                )))
            }
        };
        let nr = spec.nr;

        // Walk phase: broadcast the plan, then run exchange rounds.
        let exec = Msg::Exec(Exec { knobs, spec });
        for conn in &mut self.conns {
            conn.send(&exec)?;
        }
        let mut chunks = None;
        let mut seated = 0u64;
        for (i, conn) in self.conns.iter_mut().enumerate() {
            match conn.recv()? {
                Msg::ExecAck {
                    chunks: total,
                    resident,
                } => {
                    if *chunks.get_or_insert(total) != total {
                        return Err(ShardError::Protocol(format!(
                            "shard {i} planned {total} chunks, others {chunks:?}"
                        )));
                    }
                    seated += resident as u64;
                }
                other => {
                    return Err(ShardError::Protocol(format!(
                        "expected ExecAck, got kind {:#04x}",
                        other.kind()
                    )))
                }
            }
        }
        let chunks = chunks.unwrap_or(0);
        if seated != chunks as u64 {
            return Err(ShardError::Protocol(format!(
                "{seated} initial cursors seated across shards, expected {chunks}"
            )));
        }

        let mut inboxes: Vec<Vec<ShardCursor>> = vec![Vec::new(); self.conns.len()];
        loop {
            for (i, conn) in self.conns.iter_mut().enumerate() {
                let cursors = std::mem::take(&mut inboxes[i]);
                conn.send(&Msg::Step { cursors })?;
            }
            let mut any_parked = false;
            for i in 0..self.conns.len() {
                match self.conns[i].recv()? {
                    Msg::StepDone { parked, .. } => {
                        for (dest, cursor) in parked {
                            let dest = dest as usize;
                            if dest >= inboxes.len() || dest == i {
                                return Err(ShardError::Protocol(format!(
                                    "shard {i} parked a cursor toward shard {dest}"
                                )));
                            }
                            any_parked = true;
                            inboxes[dest].push(cursor);
                        }
                    }
                    other => {
                        return Err(ShardError::Protocol(format!(
                            "expected StepDone, got kind {:#04x}",
                            other.kind()
                        )))
                    }
                }
            }
            if !any_parked {
                break;
            }
        }

        // Collect and merge. Counts are integers, so concatenation is a
        // complete merge: the finalize side adds entries node-by-node.
        for conn in &mut self.conns {
            conn.send(&Msg::Collect)?;
        }
        let mut steps = 0u64;
        let mut completed = 0u64;
        let mut merged: Vec<(u32, u64)> = Vec::new();
        for conn in &mut self.conns {
            match conn.recv()? {
                Msg::Counts(c) => {
                    steps += c.steps;
                    completed += c.completed;
                    merged.extend(c.counts);
                }
                other => {
                    return Err(ShardError::Protocol(format!(
                        "expected Counts, got kind {:#04x}",
                        other.kind()
                    )))
                }
            }
        }
        if completed != nr {
            return Err(ShardError::Protocol(format!(
                "{completed} walks deposited across shards, planned {nr}"
            )));
        }

        self.conns[owner].send(&Msg::Finish(Finish {
            steps,
            counts: merged,
        }))?;
        match self.conns[owner].recv()? {
            Msg::Done(result) => Ok(result),
            other => Err(ShardError::Protocol(format!(
                "expected Done, got kind {:#04x}",
                other.kind()
            ))),
        }
    }

    /// Run a seed batch sequentially with the same per-query RNG seeding
    /// as `hk_serve::run_batch`: query `i` uses `rng_seed + i`.
    pub fn run_batch(
        &mut self,
        seeds: &[u32],
        knobs: QueryKnobs,
        rng_seed: u64,
    ) -> Result<Vec<WireResult>, ShardError> {
        seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| self.run_query(seed, knobs, rng_seed.wrapping_add(i as u64)))
            .collect()
    }

    /// Ask every shard process to exit.
    pub fn shutdown(mut self) {
        for conn in &mut self.conns {
            conn.send(&Msg::Shutdown).ok();
        }
    }
}

//! The shard RPC message layer, one layer above the byte framing.
//!
//! Each message travels as one [`hk_gateway::frame`] frame; the frame
//! `kind` byte selects the message and the body is a fixed
//! little-endian layout described per variant on [`Msg`]. Requests
//! (coordinator → shard) use kinds `0x01..=0x07`; replies (shard →
//! coordinator) mirror them in `0x81..=0x87`, with `0x7F` as the typed
//! error escape in either direction.
//!
//! Decoding follows the same hostile-input discipline as the framing
//! and HTTP layers: no length is trusted before it is checked against
//! the bytes actually present, truncation and trailing garbage are
//! typed [`ProtoError`]s, and nothing panics on arbitrary bodies
//! (property-tested in `hk-gateway/tests/fuzz_shard.rs` together with
//! the codec underneath).

use std::fmt;

use hk_gateway::frame::{frame_bytes, Frame};
use hkpr_core::ShardCursor;

/// Serialized size of one [`ShardCursor`] on the wire.
pub const CURSOR_LEN: usize = 56;

/// Typed decode failure above the frame layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before the layout was complete.
    Truncated {
        /// Frame kind being decoded.
        kind: u8,
    },
    /// The body continued past the end of the layout.
    Trailing {
        /// Frame kind being decoded.
        kind: u8,
        /// Unconsumed byte count.
        extra: usize,
    },
    /// The frame kind is not part of the protocol.
    UnknownKind {
        /// The kind byte found.
        found: u8,
    },
    /// A length field declares more elements than the body can hold.
    BadLength {
        /// Frame kind being decoded.
        kind: u8,
    },
    /// An `Error` frame's message was not UTF-8.
    BadUtf8,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { kind } => {
                write!(f, "truncated body for frame kind {kind:#04x}")
            }
            ProtoError::Trailing { kind, extra } => {
                write!(f, "{extra} trailing bytes after frame kind {kind:#04x}")
            }
            ProtoError::UnknownKind { found } => write!(f, "unknown frame kind {found:#04x}"),
            ProtoError::BadLength { kind } => {
                write!(f, "length field exceeds body for frame kind {kind:#04x}")
            }
            ProtoError::BadUtf8 => write!(f, "error frame message is not utf-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// The five tunable query knobs, shipped as raw `f64` bit patterns so a
/// shard rebuilds `HkprParams` *bitwise* identical to the coordinator's
/// caller — the precondition for the determinism guarantee.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryKnobs {
    /// Heat constant `t`.
    pub t: f64,
    /// Residue tolerance `eps_r`.
    pub eps_r: f64,
    /// Significance threshold `delta`.
    pub delta: f64,
    /// Failure probability `p_f`.
    pub p_f: f64,
    /// Hop-cap constant `c`.
    pub hop_c: f64,
}

/// `Begin` payload: start one TEA+ query on the seed's owner shard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Begin {
    /// Query seed node.
    pub seed: u32,
    /// Per-query RNG seed (drives push tie-breaking and the master-seed
    /// draw, exactly as in the single-process path).
    pub rng_seed: u64,
    /// Parameter knobs.
    pub knobs: QueryKnobs,
}

/// The replicated walk plan inputs: everything a shard needs to build an
/// [`hkpr_core::ExchangeSession`] identical to every other shard's.
#[derive(Clone, Debug, PartialEq)]
pub struct WalkSpec {
    /// Planned walk count.
    pub nr: u64,
    /// Master seed of the chunk RNG streams.
    pub master_seed: u64,
    /// Walk-start entries `(hop, node)`, parallel to `weights`.
    pub entries: Vec<(u32, u32)>,
    /// Residue weights the start sampler is built over.
    pub weights: Vec<f64>,
}

/// `Exec` payload: broadcast the walk phase to every shard.
#[derive(Clone, Debug, PartialEq)]
pub struct Exec {
    /// Knobs (every shard rebuilds the Poisson length tables from them).
    pub knobs: QueryKnobs,
    /// The plan inputs.
    pub spec: WalkSpec,
}

/// `Counts` payload: one shard's walk-phase outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardCounts {
    /// Walk steps taken on this shard.
    pub steps: u64,
    /// Walks whose endpoint this shard deposited.
    pub completed: u64,
    /// Sparse endpoint counts `(node, hits)`.
    pub counts: Vec<(u32, u64)>,
}

/// `Finish` payload: the merged walk outputs, handed to the owner shard
/// for finalize + sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finish {
    /// Total walk steps across shards.
    pub steps: u64,
    /// Concatenated sparse endpoint counts (duplicates allowed — the
    /// finalize side *adds* entries, so merge order is irrelevant).
    pub counts: Vec<(u32, u64)>,
}

/// A `ClusterResult` flattened onto the wire, carrying every field that
/// [`hk_cluster::ClusterResult::bitwise_eq`] compares — so wire results
/// can be checked for bitwise conformance against a locally computed
/// oracle without reconstructing the estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct WireResult {
    /// Minimum-conductance sweep prefix, ascending node ids.
    pub cluster: Vec<u32>,
    /// Conductance of that prefix.
    pub conductance: f64,
    /// Estimate support `(node, value)` in support-iteration order.
    pub support: Vec<(u32, f64)>,
    /// Estimate offset coefficient.
    pub offset: f64,
    /// `|S*|`, the sweep's input size.
    pub support_size: u64,
    /// [`hkpr_core::QueryStats::push_operations`].
    pub push_operations: u64,
    /// [`hkpr_core::QueryStats::random_walks`].
    pub random_walks: u64,
    /// [`hkpr_core::QueryStats::walk_steps`].
    pub walk_steps: u64,
    /// [`hkpr_core::QueryStats::alpha`].
    pub alpha: f64,
    /// [`hkpr_core::QueryStats::early_exit`].
    pub early_exit: bool,
}

impl WireResult {
    /// Flatten a locally computed result for the wire.
    pub fn from_result(r: &hk_cluster::ClusterResult) -> WireResult {
        WireResult {
            cluster: r.cluster.clone(),
            conductance: r.conductance,
            support: r.estimate.support().collect(),
            offset: r.estimate.offset_coeff(),
            support_size: r.support_size as u64,
            push_operations: r.stats.push_operations,
            random_walks: r.stats.random_walks,
            walk_steps: r.stats.walk_steps,
            alpha: r.stats.alpha,
            early_exit: r.stats.early_exit,
        }
    }

    /// Whether this wire result is *bitwise* identical to a locally
    /// computed one — the same comparison as
    /// [`hk_cluster::ClusterResult::bitwise_eq`], across the wire.
    pub fn bitwise_matches(&self, r: &hk_cluster::ClusterResult) -> bool {
        self.cluster == r.cluster
            && self.conductance.to_bits() == r.conductance.to_bits()
            && self.support_size == r.support_size as u64
            && self.push_operations == r.stats.push_operations
            && self.random_walks == r.stats.random_walks
            && self.walk_steps == r.stats.walk_steps
            && self.alpha.to_bits() == r.stats.alpha.to_bits()
            && self.early_exit == r.stats.early_exit
            && self.offset.to_bits() == r.estimate.offset_coeff().to_bits()
            && self.support.len() == r.estimate.nnz()
            && self
                .support
                .iter()
                .zip(r.estimate.support())
                .all(|(&(u, x), (v, y))| u == v && x.to_bits() == y.to_bits())
    }
}

/// One protocol message. The doc comment of each variant gives its frame
/// kind; bodies are little-endian with `f64`s as IEEE-754 bit patterns.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// `0x01` coordinator → shard: identify yourself. Empty body.
    Hello,
    /// `0x81` reply: `shard_id u32 | shards u32 | n u32 | fingerprint
    /// u64 | starts (shards+1)×u32` — the shard's identity, the graph
    /// fingerprint and the node partition it is serving.
    HelloAck {
        /// This shard's index.
        shard_id: u32,
        /// Total shard count.
        shards: u32,
        /// Node count of the snapshot.
        n: u32,
        /// Graph fingerprint (backend-independent FNV-1a).
        fingerprint: u64,
        /// Partition boundaries, `shards + 1` entries from 0 to `n`.
        starts: Vec<u32>,
    },
    /// `0x02` coordinator → owner shard: `seed u32 | rng_seed u64 |
    /// knobs 5×f64`. Runs push + residue reduction.
    Begin(Begin),
    /// `0x82` reply when the push phase already finished the query.
    BeginDone(WireResult),
    /// `0x83` reply when a walk phase is required: the [`WalkSpec`] as
    /// `nr u64 | master_seed u64 | len u32 | len×(hop u32, node u32) |
    /// len×f64` — the coordinator broadcasts it back out in [`Msg::Exec`].
    BeginWalk(WalkSpec),
    /// `0x03` coordinator → every shard: `knobs 5×f64 | WalkSpec`.
    /// Builds the replicated plan and seats this shard's initial cursors.
    Exec(Exec),
    /// `0x84` reply: `chunks u32 | resident u32` — total plan chunks and
    /// how many initial cursors this shard seated.
    ExecAck {
        /// Total chunks in the plan.
        chunks: u32,
        /// Chunks whose initial cursor this shard owns.
        resident: u32,
    },
    /// `0x04` coordinator → shard, one exchange round: `count u32 |
    /// count×cursor` — cursors parked toward this shard last round.
    Step {
        /// Incoming migrated cursors.
        cursors: Vec<ShardCursor>,
    },
    /// `0x85` reply: `completed u64 | count u32 | count×(dest u32 |
    /// cursor)` — cumulative walks deposited here, plus every cursor
    /// that parked this round with its destination shard.
    StepDone {
        /// Cumulative walks deposited on this shard.
        completed: u64,
        /// Parked cursors: `(destination shard, cursor)`.
        parked: Vec<(u32, ShardCursor)>,
    },
    /// `0x05` coordinator → every shard: walk phase is globally quiet;
    /// send your outputs. Empty body.
    Collect,
    /// `0x86` reply: `steps u64 | completed u64 | len u32 |
    /// len×(node u32, count u64)`.
    Counts(ShardCounts),
    /// `0x06` coordinator → owner shard: `steps u64 | len u32 |
    /// len×(node u32, count u64)` — merged counts for finalize + sweep.
    Finish(Finish),
    /// `0x87` reply: the finished query's [`WireResult`].
    Done(WireResult),
    /// `0x07` coordinator → shard: exit cleanly. Empty body.
    Shutdown,
    /// `0x7F` either direction: a typed failure, body is a UTF-8 message.
    /// The query (not the connection) is dead.
    Error(String),
}

// ---------------------------------------------------------------- encode

struct W {
    buf: Vec<u8>,
}

impl W {
    fn new() -> W {
        W { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn knobs(&mut self, k: &QueryKnobs) {
        self.f64(k.t);
        self.f64(k.eps_r);
        self.f64(k.delta);
        self.f64(k.p_f);
        self.f64(k.hop_c);
    }
    fn cursor(&mut self, c: &ShardCursor) {
        self.u32(c.chunk);
        self.u32(c.item);
        self.u64(c.done);
        self.u32(c.node);
        self.u32(c.rem);
        for w in c.rng {
            self.u64(w);
        }
    }
    fn spec(&mut self, s: &WalkSpec) {
        self.u64(s.nr);
        self.u64(s.master_seed);
        self.u32(s.entries.len() as u32);
        for &(hop, node) in &s.entries {
            self.u32(hop);
            self.u32(node);
        }
        for &w in &s.weights {
            self.f64(w);
        }
    }
    fn result(&mut self, r: &WireResult) {
        self.u32(r.cluster.len() as u32);
        for &v in &r.cluster {
            self.u32(v);
        }
        self.f64(r.conductance);
        self.u32(r.support.len() as u32);
        for &(v, x) in &r.support {
            self.u32(v);
            self.f64(x);
        }
        self.f64(r.offset);
        self.u64(r.support_size);
        self.u64(r.push_operations);
        self.u64(r.random_walks);
        self.u64(r.walk_steps);
        self.f64(r.alpha);
        self.u8(r.early_exit as u8);
    }
    fn pairs(&mut self, pairs: &[(u32, u64)]) {
        self.u32(pairs.len() as u32);
        for &(node, count) in pairs {
            self.u32(node);
            self.u64(count);
        }
    }
}

impl Msg {
    /// The frame kind byte of this message.
    pub fn kind(&self) -> u8 {
        match self {
            Msg::Hello => 0x01,
            Msg::Begin(_) => 0x02,
            Msg::Exec(_) => 0x03,
            Msg::Step { .. } => 0x04,
            Msg::Collect => 0x05,
            Msg::Finish(_) => 0x06,
            Msg::Shutdown => 0x07,
            Msg::HelloAck { .. } => 0x81,
            Msg::BeginDone(_) => 0x82,
            Msg::BeginWalk(_) => 0x83,
            Msg::ExecAck { .. } => 0x84,
            Msg::StepDone { .. } => 0x85,
            Msg::Counts(_) => 0x86,
            Msg::Done(_) => 0x87,
            Msg::Error(_) => 0x7F,
        }
    }

    /// Encode into one complete frame (header + body + CRC).
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut w = W::new();
        match self {
            Msg::Hello | Msg::Collect | Msg::Shutdown => {}
            Msg::HelloAck {
                shard_id,
                shards,
                n,
                fingerprint,
                starts,
            } => {
                w.u32(*shard_id);
                w.u32(*shards);
                w.u32(*n);
                w.u64(*fingerprint);
                for &s in starts {
                    w.u32(s);
                }
            }
            Msg::Begin(b) => {
                w.u32(b.seed);
                w.u64(b.rng_seed);
                w.knobs(&b.knobs);
            }
            Msg::BeginDone(r) | Msg::Done(r) => w.result(r),
            Msg::BeginWalk(s) => w.spec(s),
            Msg::Exec(e) => {
                w.knobs(&e.knobs);
                w.spec(&e.spec);
            }
            Msg::ExecAck { chunks, resident } => {
                w.u32(*chunks);
                w.u32(*resident);
            }
            Msg::Step { cursors } => {
                w.u32(cursors.len() as u32);
                for c in cursors {
                    w.cursor(c);
                }
            }
            Msg::StepDone { completed, parked } => {
                w.u64(*completed);
                w.u32(parked.len() as u32);
                for (dest, c) in parked {
                    w.u32(*dest);
                    w.cursor(c);
                }
            }
            Msg::Counts(c) => {
                w.u64(c.steps);
                w.u64(c.completed);
                w.pairs(&c.counts);
            }
            Msg::Finish(fin) => {
                w.u64(fin.steps);
                w.pairs(&fin.counts);
            }
            Msg::Error(msg) => w.buf.extend_from_slice(msg.as_bytes()),
        }
        frame_bytes(self.kind(), &w.buf)
    }
}

// ---------------------------------------------------------------- decode

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
    kind: u8,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated { kind: self.kind });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A count of `elt`-byte elements about to be read. Checked against
    /// the bytes actually remaining *before* any allocation, so a hostile
    /// length cannot drive an over-reservation.
    fn len(&mut self, elt: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n.checked_mul(elt)
            .is_none_or(|b| b > self.buf.len() - self.pos)
        {
            return Err(ProtoError::BadLength { kind: self.kind });
        }
        Ok(n)
    }
    fn knobs(&mut self) -> Result<QueryKnobs, ProtoError> {
        Ok(QueryKnobs {
            t: self.f64()?,
            eps_r: self.f64()?,
            delta: self.f64()?,
            p_f: self.f64()?,
            hop_c: self.f64()?,
        })
    }
    fn cursor(&mut self) -> Result<ShardCursor, ProtoError> {
        Ok(ShardCursor {
            chunk: self.u32()?,
            item: self.u32()?,
            done: self.u64()?,
            node: self.u32()?,
            rem: self.u32()?,
            rng: [self.u64()?, self.u64()?, self.u64()?, self.u64()?],
        })
    }
    fn spec(&mut self) -> Result<WalkSpec, ProtoError> {
        let nr = self.u64()?;
        let master_seed = self.u64()?;
        // Entries (8B each) are followed by the same number of weights
        // (8B each), so the occupancy check is 16B per declared element.
        let len = self.len(16)?;
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            entries.push((self.u32()?, self.u32()?));
        }
        let mut weights = Vec::with_capacity(len);
        for _ in 0..len {
            weights.push(self.f64()?);
        }
        Ok(WalkSpec {
            nr,
            master_seed,
            entries,
            weights,
        })
    }
    fn result(&mut self) -> Result<WireResult, ProtoError> {
        let clen = self.len(4)?;
        let mut cluster = Vec::with_capacity(clen);
        for _ in 0..clen {
            cluster.push(self.u32()?);
        }
        let conductance = self.f64()?;
        let slen = self.len(12)?;
        let mut support = Vec::with_capacity(slen);
        for _ in 0..slen {
            support.push((self.u32()?, self.f64()?));
        }
        Ok(WireResult {
            cluster,
            conductance,
            support,
            offset: self.f64()?,
            support_size: self.u64()?,
            push_operations: self.u64()?,
            random_walks: self.u64()?,
            walk_steps: self.u64()?,
            alpha: self.f64()?,
            early_exit: self.u8()? != 0,
        })
    }
    fn pairs(&mut self) -> Result<Vec<(u32, u64)>, ProtoError> {
        let len = self.len(12)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push((self.u32()?, self.u64()?));
        }
        Ok(out)
    }
}

impl Msg {
    /// Decode one frame into a message. Every malformed body is a typed
    /// [`ProtoError`]; no input panics.
    pub fn decode(frame: &Frame) -> Result<Msg, ProtoError> {
        let mut r = R {
            buf: &frame.body,
            pos: 0,
            kind: frame.kind,
        };
        let msg = match frame.kind {
            0x01 => Msg::Hello,
            0x05 => Msg::Collect,
            0x07 => Msg::Shutdown,
            0x81 => {
                let shard_id = r.u32()?;
                let shards = r.u32()?;
                let n = r.u32()?;
                let fingerprint = r.u64()?;
                let want = (shards as usize).saturating_add(1);
                if want.checked_mul(4).is_none_or(|b| b > r.buf.len() - r.pos) {
                    return Err(ProtoError::BadLength { kind: r.kind });
                }
                let mut starts = Vec::with_capacity(want);
                for _ in 0..want {
                    starts.push(r.u32()?);
                }
                Msg::HelloAck {
                    shard_id,
                    shards,
                    n,
                    fingerprint,
                    starts,
                }
            }
            0x02 => Msg::Begin(Begin {
                seed: r.u32()?,
                rng_seed: r.u64()?,
                knobs: r.knobs()?,
            }),
            0x82 => Msg::BeginDone(r.result()?),
            0x83 => Msg::BeginWalk(r.spec()?),
            0x03 => Msg::Exec(Exec {
                knobs: r.knobs()?,
                spec: r.spec()?,
            }),
            0x84 => Msg::ExecAck {
                chunks: r.u32()?,
                resident: r.u32()?,
            },
            0x04 => {
                let len = r.len(CURSOR_LEN)?;
                let mut cursors = Vec::with_capacity(len);
                for _ in 0..len {
                    cursors.push(r.cursor()?);
                }
                Msg::Step { cursors }
            }
            0x85 => {
                let completed = r.u64()?;
                let len = r.len(4 + CURSOR_LEN)?;
                let mut parked = Vec::with_capacity(len);
                for _ in 0..len {
                    parked.push((r.u32()?, r.cursor()?));
                }
                Msg::StepDone { completed, parked }
            }
            0x86 => Msg::Counts(ShardCounts {
                steps: r.u64()?,
                completed: r.u64()?,
                counts: r.pairs()?,
            }),
            0x06 => Msg::Finish(Finish {
                steps: r.u64()?,
                counts: r.pairs()?,
            }),
            0x87 => Msg::Done(r.result()?),
            0x7F => {
                let msg = std::str::from_utf8(&r.buf[r.pos..])
                    .map_err(|_| ProtoError::BadUtf8)?
                    .to_string();
                r.pos = r.buf.len();
                Msg::Error(msg)
            }
            found => return Err(ProtoError::UnknownKind { found }),
        };
        if r.pos != r.buf.len() {
            return Err(ProtoError::Trailing {
                kind: frame.kind,
                extra: r.buf.len() - r.pos,
            });
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_gateway::frame::{FrameLimits, FrameParser};

    fn roundtrip(msg: &Msg) {
        let wire = msg.to_frame_bytes();
        let mut p = FrameParser::new(FrameLimits::default());
        p.feed(&wire);
        let frame = p.try_next().unwrap().unwrap();
        assert_eq!(frame.kind, msg.kind());
        assert_eq!(
            &Msg::decode(&frame).unwrap(),
            msg,
            "kind {:#04x}",
            msg.kind()
        );
        assert_eq!(p.buffered(), 0);
    }

    fn cursor(i: u64) -> ShardCursor {
        ShardCursor {
            chunk: i as u32,
            item: 10 + i as u32,
            done: 1000 + i,
            node: 7 * i as u32,
            rem: 3,
            rng: [i, i ^ 0xFF, i.wrapping_mul(31), !i],
        }
    }

    fn result() -> WireResult {
        WireResult {
            cluster: vec![3, 5, 9],
            conductance: 0.125,
            support: vec![(3, 0.5), (5, -0.0), (9, 1e-300)],
            offset: 0.0625,
            support_size: 3,
            push_operations: 42,
            random_walks: 1000,
            walk_steps: 4879,
            alpha: 0.37,
            early_exit: false,
        }
    }

    #[test]
    fn every_message_roundtrips() {
        let knobs = QueryKnobs {
            t: 5.0,
            eps_r: 0.5,
            delta: 1e-4,
            p_f: 1e-3,
            hop_c: 2.5,
        };
        let spec = WalkSpec {
            nr: 100,
            master_seed: 0xDEAD_BEEF,
            entries: vec![(0, 4), (1, 9), (3, 0)],
            weights: vec![0.5, 0.25, 0.125],
        };
        let msgs = [
            Msg::Hello,
            Msg::HelloAck {
                shard_id: 1,
                shards: 3,
                n: 100,
                fingerprint: 0xABCD,
                starts: vec![0, 34, 67, 100],
            },
            Msg::Begin(Begin {
                seed: 17,
                rng_seed: 99,
                knobs,
            }),
            Msg::BeginDone(result()),
            Msg::BeginWalk(spec.clone()),
            Msg::Exec(Exec { knobs, spec }),
            Msg::ExecAck {
                chunks: 8,
                resident: 3,
            },
            Msg::Step {
                cursors: vec![cursor(0), cursor(1)],
            },
            Msg::Step { cursors: vec![] },
            Msg::StepDone {
                completed: 512,
                parked: vec![(2, cursor(5))],
            },
            Msg::Collect,
            Msg::Counts(ShardCounts {
                steps: 10_000,
                completed: 640,
                counts: vec![(0, 3), (99, 1)],
            }),
            Msg::Finish(Finish {
                steps: 10_000,
                counts: vec![(0, 3), (0, 2), (99, 1)],
            }),
            Msg::Done(result()),
            Msg::Shutdown,
            Msg::Error("graph mismatch".into()),
        ];
        for msg in &msgs {
            roundtrip(msg);
        }
    }

    #[test]
    fn f64_fields_cross_bitwise() {
        let mut r = result();
        r.conductance = f64::from_bits(0x7FF0_0000_0000_0001); // a NaN payload
        r.support[1].1 = -0.0;
        let wire = Msg::Done(r.clone()).to_frame_bytes();
        let mut p = FrameParser::new(FrameLimits::default());
        p.feed(&wire);
        let back = Msg::decode(&p.try_next().unwrap().unwrap()).unwrap();
        match back {
            Msg::Done(got) => {
                assert_eq!(got.conductance.to_bits(), r.conductance.to_bits());
                assert_eq!(got.support[1].1.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        let msgs = [
            Msg::Begin(Begin {
                seed: 1,
                rng_seed: 2,
                knobs: QueryKnobs {
                    t: 5.0,
                    eps_r: 0.5,
                    delta: 1e-4,
                    p_f: 1e-3,
                    hop_c: 2.5,
                },
            }),
            Msg::Step {
                cursors: vec![cursor(0)],
            },
            Msg::Done(result()),
        ];
        for msg in &msgs {
            let wire = msg.to_frame_bytes();
            let body = &wire[hk_gateway::frame::HEADER_LEN..wire.len() - 4];
            for cut in 0..body.len() {
                let frame = Frame {
                    kind: msg.kind(),
                    body: body[..cut].to_vec(),
                };
                match Msg::decode(&frame) {
                    Err(_) => {}
                    Ok(m) => panic!("decoded {m:?} from a {cut}-byte prefix"),
                }
            }
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A Step frame declaring u32::MAX cursors with a 4-byte body.
        let frame = Frame {
            kind: 0x04,
            body: u32::MAX.to_le_bytes().to_vec(),
        };
        assert_eq!(
            Msg::decode(&frame),
            Err(ProtoError::BadLength { kind: 0x04 })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let wire = Msg::ExecAck {
            chunks: 1,
            resident: 1,
        }
        .to_frame_bytes();
        let mut body = wire[hk_gateway::frame::HEADER_LEN..wire.len() - 4].to_vec();
        body.push(0);
        let frame = Frame { kind: 0x84, body };
        assert!(matches!(
            Msg::decode(&frame),
            Err(ProtoError::Trailing {
                kind: 0x84,
                extra: 1
            })
        ));
    }

    #[test]
    fn unknown_kind_is_typed() {
        let frame = Frame {
            kind: 0x42,
            body: vec![],
        };
        assert_eq!(
            Msg::decode(&frame),
            Err(ProtoError::UnknownKind { found: 0x42 })
        );
    }
}

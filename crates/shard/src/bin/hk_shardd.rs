//! `hk-shardd` — one shard process of the sharded serving tier.
//!
//! ```text
//! hk-shardd --snapshot data/plc.x4.hkg --shard-id 0 --shards 2 [--port 0]
//! ```
//!
//! Loads the snapshot, binds a loopback listener (`--port 0` picks an
//! ephemeral port), prints `LISTENING <port>` on stdout once ready, and
//! serves coordinator connections until a `Shutdown` frame arrives.

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;

struct Args {
    snapshot: String,
    shard_id: usize,
    shards: usize,
    port: u16,
}

fn parse_args() -> Result<Args, String> {
    let mut snapshot = None;
    let mut shard_id = None;
    let mut shards = None;
    let mut port = 0u16;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--snapshot" => snapshot = Some(value("--snapshot")?),
            "--shard-id" => {
                shard_id = Some(
                    value("--shard-id")?
                        .parse::<usize>()
                        .map_err(|e| format!("--shard-id: {e}"))?,
                )
            }
            "--shards" => {
                shards = Some(
                    value("--shards")?
                        .parse::<usize>()
                        .map_err(|e| format!("--shards: {e}"))?,
                )
            }
            "--port" => {
                port = value("--port")?
                    .parse::<u16>()
                    .map_err(|e| format!("--port: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let snapshot = snapshot.ok_or("--snapshot is required")?;
    let shard_id = shard_id.ok_or("--shard-id is required")?;
    let shards = shards.ok_or("--shards is required")?;
    if shards == 0 || shard_id >= shards {
        return Err(format!(
            "--shard-id {shard_id} out of range for --shards {shards}"
        ));
    }
    Ok(Args {
        snapshot,
        shard_id,
        shards,
        port,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hk-shardd: {e}");
            eprintln!("usage: hk-shardd --snapshot FILE.hkg --shard-id I --shards N [--port P]");
            return ExitCode::from(2);
        }
    };
    let graph = match hk_graph::io::load_binary(&args.snapshot) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("hk-shardd: loading {}: {e}", args.snapshot);
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(("127.0.0.1", args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("hk-shardd: bind 127.0.0.1:{}: {e}", args.port);
            return ExitCode::FAILURE;
        }
    };
    let port = listener.local_addr().map(|a| a.port()).unwrap_or(args.port);
    // The readiness line the spawner parses; flush before serving.
    println!("LISTENING {port}");
    std::io::stdout().flush().ok();
    match hk_shard::serve(&listener, &graph, args.shard_id, args.shards) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hk-shardd: {e}");
            ExitCode::FAILURE
        }
    }
}
